"""Hot-path statistical sampling profiler with span/plan-step attribution.

The span tracer (:mod:`repro.telemetry.tracer`) only sees code we
remembered to instrument; the fractal hot loops (decomposition, plan
replay, ``ops.dispatch``) spend most of their wall time in *uninstrumented*
per-step host work.  A :class:`SamplingProfiler` closes that gap: a
background thread samples the owning thread's Python stack via
``sys._current_frames()`` at a fixed rate (default ~200 Hz) and aggregates
the stacks in collapsed form.  Every sample is stamped with

* the **active telemetry span name** (the tracer's open-span stack),
* the current **plan-step opcode** and **fractal level** -- published by
  the executor's replay loop / kernel dispatch through :func:`set_step`,
* the ambient **trace_id / worker** (:mod:`repro.obs.trace`) at export.

Attribution state is kept in a plain per-thread-ident map rather than a
``contextvars.ContextVar``: the sampler runs on its *own* thread, and a
contextvar set on the sampled thread is invisible from any other thread --
the explicit map is the cross-thread-readable equivalent (``set_step`` has
exactly the contextvar cost profile: one module-global check when no
profiler is active, one dict store when one is).

Like the counter registry, tracer and event log, everything here follows
the null-object discipline: with no profiler started, ``set_step`` /
``clear_step`` are a single flag check, so instrumented hot paths stay
inside the <5% overhead budget of docs/TELEMETRY.md.

Profiles serialize to a schema-versioned ``repro.obs.profile`` v1 JSON
document (see docs/OBSERVABILITY.md): collapsed stacks with per-stack
attribution plus rollup tables (``attribution.spans`` / ``.opcodes`` /
``.levels`` / ``.workers``) whose sums equal the sample count by
construction -- :func:`validate_profile` checks exactly that.  Rendering
and diffing live in :mod:`repro.obs.flame`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

PROFILE_SCHEMA = "repro.obs.profile"
PROFILE_SCHEMA_VERSION = 1

#: default sampling rate; ~200 Hz keeps sampler CPU well under 1%.
DEFAULT_HZ = 200.0

#: deepest stack walked per sample (frames below are dropped).
MAX_STACK_DEPTH = 80

#: attribution key for samples with no span/opcode/level in flight.
NONE_KEY = "(none)"

#: the one active profiler (at most one per process; see SamplingProfiler).
_ACTIVE: Optional["SamplingProfiler"] = None

#: per-thread-ident (opcode, level) set by the executor's hot loops.
_STEP: Dict[int, Tuple[str, Optional[int]]] = {}


def _after_fork_in_child() -> None:
    """Drop profiler state inherited across ``fork()``.

    A forked pool child copies ``_ACTIVE`` but not its sampler thread
    (threads do not survive fork), so the stale object would both fail
    to sample and make ``worker_capture`` think a profiler is already
    running and skip starting the cell's own.
    """
    global _ACTIVE
    _ACTIVE = None
    _STEP.clear()


if hasattr(os, "register_at_fork"):  # POSIX only; spawn starts clean
    os.register_at_fork(after_in_child=_after_fork_in_child)

#: internal sample key: (frames, span, opcode, level, worker).
_SampleKey = Tuple[Tuple[str, ...], Optional[str], Optional[str],
                   Optional[int], Optional[int]]


def get_profiler() -> Optional["SamplingProfiler"]:
    """The currently running profiler, or None."""
    return _ACTIVE


def profiling() -> bool:
    """True while a profiler is running (the hot-path flag check)."""
    return _ACTIVE is not None


def set_step(opcode: str, level: Optional[int] = None) -> None:
    """Publish the in-flight plan-step attribution for this thread.

    Called by ``FractalExecutor.run_plan`` per replay step and by the
    kernel/LFU dispatch on the recursive path.  No-op (one global check)
    unless a profiler is running.
    """
    if _ACTIVE is None:
        return
    _STEP[threading.get_ident()] = (opcode, level)


def clear_step() -> None:
    """Drop this thread's plan-step attribution (end of program/replay)."""
    if _ACTIVE is None:
        return
    _STEP.pop(threading.get_ident(), None)


def current_step() -> Optional[Tuple[str, Optional[int]]]:
    """This thread's published (opcode, level), or None (for tests)."""
    return _STEP.get(threading.get_ident())


@contextmanager
def step_scope(opcode: str, level: Optional[int] = None):
    """Scoped :func:`set_step` that restores the previous attribution.

    Used by coarse phases (e.g. ``plan.compile``); the per-step hot loops
    call :func:`set_step` directly to avoid context-manager overhead.
    """
    if _ACTIVE is None:
        yield
        return
    ident = threading.get_ident()
    prev = _STEP.get(ident)
    _STEP[ident] = (opcode, level)
    try:
        yield
    finally:
        if prev is None:
            _STEP.pop(ident, None)
        else:
            _STEP[ident] = prev


def _frame_label(code) -> str:
    """``file:qualname`` label for one frame's code object."""
    name = getattr(code, "co_qualname", None) or code.co_name
    stem = code.co_filename.rsplit("/", 1)[-1].rsplit("\\", 1)[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}:{name}"


class SamplingProfiler:
    """Threading-based statistical stack sampler (start/stop or ``with``).

    Samples the **owner thread** (the one that called :meth:`start`) --
    hot-path profiling targets the thread running the workload; pool
    children each start their own profiler via ``worker_capture``.  At
    most one profiler runs per process (the attribution hooks publish to
    it); a second concurrent :meth:`start` raises ``RuntimeError``.
    """

    def __init__(self, hz: float = DEFAULT_HZ, tracer=None, registry=None,
                 max_stacks: int = 5000, max_depth: int = MAX_STACK_DEPTH):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self.interval_s = 1.0 / self.hz
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self._tracer = tracer
        self._registry = registry
        self._samples: Dict[_SampleKey, int] = {}
        self._label_cache: Dict[object, str] = {}
        self.ticks = 0          # sampler wake-ups
        self.samples = 0        # samples aggregated into stacks
        self.samples_dropped = 0  # distinct-stack cap overflow
        self.errors = 0         # swallowed sampling exceptions
        self.duration_s = 0.0
        self._t0: Optional[float] = None
        self._owner: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_evt = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        global _ACTIVE
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if _ACTIVE is not None:
            raise RuntimeError("another SamplingProfiler is already active "
                               "in this process")
        if self._tracer is None:
            from .. import telemetry
            self._tracer = telemetry.get_tracer()
        self._owner = threading.get_ident()
        self._t0 = time.perf_counter()
        self._stop_evt.clear()
        _ACTIVE = self
        self._thread = threading.Thread(target=self._loop, name="repro-prof",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        global _ACTIVE
        if self._thread is None:
            return self
        self._stop_evt.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._t0 is not None:
            self.duration_s += time.perf_counter() - self._t0
            self._t0 = None
        if _ACTIVE is self:
            _ACTIVE = None
            _STEP.clear()
        self._publish_counters()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def _publish_counters(self) -> None:
        registry = self._registry
        if registry is None:
            from .. import telemetry
            registry = telemetry.get_registry()
        if not registry.enabled:
            return
        registry.count("prof.profiles", 1)
        if self.samples:
            registry.count("prof.samples", self.samples)
        if self.samples_dropped:
            registry.count("prof.samples_dropped", self.samples_dropped)

    # -- sampling -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop_evt.wait(self.interval_s):
            try:
                self._sample_once()
            except Exception:  # noqa: BLE001 - the sampler must never die
                self.errors += 1

    def _sample_once(self) -> None:
        self.ticks += 1
        frame = sys._current_frames().get(self._owner)
        if frame is None:
            return
        labels: List[str] = []
        cache = self._label_cache
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            label = cache.get(code)
            if label is None:
                label = cache[code] = _frame_label(code)
            labels.append(label)
            frame = frame.f_back
            depth += 1
        labels.reverse()  # root first, leaf last (collapsed-stack order)

        span = None
        tracer = self._tracer
        if tracer is not None:
            current = getattr(tracer, "current_span_name", None)
            if current is not None:
                span = current()
        step = _STEP.get(self._owner)
        opcode, level = step if step is not None else (None, None)
        self._add((tuple(labels), span, opcode, level, None), 1)

    def _add(self, key: _SampleKey, count: int) -> None:
        existing = self._samples.get(key)
        if existing is not None:
            self._samples[key] = existing + count
            self.samples += count
        elif len(self._samples) < self.max_stacks:
            self._samples[key] = count
            self.samples += count
        else:
            self.samples_dropped += count

    def ingest(self, doc: Dict[str, object], worker: Optional[int] = None) -> None:
        """Fold a shipped ``repro.obs.profile`` document into this profiler.

        Used by the parent-side worker-telemetry merge: each stack keeps
        (or gains) its ``worker`` tag so merged flamegraphs attribute
        per-worker subtrees.
        """
        if worker is None:
            raw = doc.get("worker")
            worker = int(raw) if isinstance(raw, (int, float)) else None
        for stack in doc.get("stacks") or []:
            level = stack.get("level")
            tag = stack.get("worker", worker)
            self._add((tuple(str(f) for f in stack.get("frames") or ()),
                       stack.get("span"), stack.get("opcode"),
                       int(level) if isinstance(level, (int, float)) else None,
                       int(tag) if isinstance(tag, (int, float)) else None),
                      int(stack.get("count", 0)))
        dropped = doc.get("samples_dropped")
        if isinstance(dropped, (int, float)):
            self.samples_dropped += int(dropped)

    # -- export -------------------------------------------------------------

    def to_doc(self, benchmark: Optional[str] = None,
               machine: Optional[str] = None,
               meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The schema-versioned ``repro.obs.profile`` v1 document.

        Safe to call while running (crash bundles snapshot the in-flight
        profile); ``duration_s`` then covers start-to-now.
        """
        duration = self.duration_s
        if self._t0 is not None:
            duration += time.perf_counter() - self._t0
        # ``samples`` is derived from the stack table (not the running
        # counter) so the document invariant samples == sum(stack counts)
        # holds by construction even for in-flight snapshots.
        stacks = [
            {"frames": list(frames), "count": count,
             **({"span": span} if span is not None else {}),
             **({"opcode": opcode} if opcode is not None else {}),
             **({"level": level} if level is not None else {}),
             **({"worker": worker} if worker is not None else {})}
            for (frames, span, opcode, level, worker), count
            in sorted(self._samples.items(),
                      key=lambda item: (-item[1], item[0][0], item[0][1] or "",
                                        item[0][2] or "",
                                        -1 if item[0][3] is None else item[0][3],
                                        -1 if item[0][4] is None else item[0][4]))
        ]
        doc: Dict[str, object] = {
            "schema": PROFILE_SCHEMA,
            "v": PROFILE_SCHEMA_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "hz": self.hz,
            "duration_s": duration,
            "ticks": self.ticks,
            "samples": sum(s["count"] for s in stacks),
            "samples_dropped": self.samples_dropped,
            "stacks": stacks,
            "attribution": attribution_tables(stacks),
        }
        if benchmark:
            doc["benchmark"] = benchmark
        if machine:
            doc["machine"] = machine
        if meta:
            doc["meta"] = dict(meta)
        try:
            from .trace import current_trace
            ctx = current_trace()
        except ImportError:  # pragma: no cover - trace ships with obs
            ctx = None
        if ctx is not None:
            doc["trace_id"] = ctx.trace_id
            doc["span_id"] = ctx.span_id
            doc["worker"] = ctx.worker
        return doc


def attribution_tables(stacks: Iterable[Dict[str, object]]) -> Dict[str, Dict[str, int]]:
    """Rollup tables over stack entries; each table sums to the sample count.

    ``workers`` is only emitted when at least one stack carries a worker
    tag (merged multi-worker profiles).
    """
    spans: Dict[str, int] = {}
    opcodes: Dict[str, int] = {}
    levels: Dict[str, int] = {}
    workers: Dict[str, int] = {}
    any_worker = False
    for stack in stacks:
        count = int(stack.get("count", 0))
        span = stack.get("span")
        opcode = stack.get("opcode")
        level = stack.get("level")
        span_key = str(span) if span is not None else NONE_KEY
        opcode_key = str(opcode) if opcode is not None else NONE_KEY
        level_key = str(level) if level is not None else NONE_KEY
        spans[span_key] = spans.get(span_key, 0) + count
        opcodes[opcode_key] = opcodes.get(opcode_key, 0) + count
        levels[level_key] = levels.get(level_key, 0) + count
        worker = stack.get("worker")
        worker_key = str(worker) if worker is not None else NONE_KEY
        if worker is not None:
            any_worker = True
        workers[worker_key] = workers.get(worker_key, 0) + count
    out = {
        "spans": dict(sorted(spans.items())),
        "opcodes": dict(sorted(opcodes.items())),
        "levels": dict(sorted(levels.items())),
    }
    if any_worker:
        out["workers"] = dict(sorted(workers.items()))
    return out


def validate_profile(doc: Dict[str, object]) -> List[str]:
    """Structural validation of a profile document (empty list = valid).

    Beyond shape checks, verifies the acceptance invariant: every
    attribution table sums to the total stack sample count.
    """
    problems: List[str] = []
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(f"unknown schema {doc.get('schema')!r}")
    version = doc.get("v")
    if not isinstance(version, int) or version < 1:
        problems.append(f"bad version {version!r}")
    elif version > PROFILE_SCHEMA_VERSION:
        problems.append(f"document is from the future "
                        f"(v{version} > v{PROFILE_SCHEMA_VERSION})")
    stacks = doc.get("stacks")
    if not isinstance(stacks, list):
        return [*problems, "'stacks' must be a list"]
    total = 0
    for i, stack in enumerate(stacks):
        if not isinstance(stack, dict):
            problems.append(f"stacks[{i}] must be an object")
            continue
        frames = stack.get("frames")
        if not isinstance(frames, list) or not all(
                isinstance(f, str) for f in frames):
            problems.append(f"stacks[{i}].frames must be a list of strings")
        count = stack.get("count")
        if not isinstance(count, int) or isinstance(count, bool) or count <= 0:
            problems.append(f"stacks[{i}].count must be a positive int")
            continue
        total += count
    samples = doc.get("samples")
    if not isinstance(samples, int) or isinstance(samples, bool) or samples < 0:
        problems.append(f"bad samples {samples!r}")
    elif samples != total:
        problems.append(f"samples ({samples}) != sum of stack counts ({total})")
    attribution = doc.get("attribution")
    if not isinstance(attribution, dict):
        return [*problems, "'attribution' must be an object"]
    for key in ("spans", "opcodes", "levels"):
        table = attribution.get(key)
        if not isinstance(table, dict):
            problems.append(f"attribution.{key} must be an object")
            continue
        table_sum = sum(v for v in table.values()
                        if isinstance(v, int) and not isinstance(v, bool))
        if table_sum != total:
            problems.append(f"attribution.{key} sums to {table_sum}, "
                            f"expected {total} (the sample count)")
    return problems


def merge_profiles(docs: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Merge profile documents into one (deterministic, order-insensitive).

    Stacks keep their ``worker`` tag, or inherit the source document's
    top-level ``worker``, so a merged sweep profile attributes per-worker
    subtrees.  ``hz`` comes from the first document, ``duration_s`` is the
    max (workers run concurrently), sample counts add.
    """
    docs = list(docs)
    merged: Dict[_SampleKey, int] = {}
    hz = None
    duration = 0.0
    dropped = 0
    ticks = 0
    trace_id = span_id = None
    for doc in docs:
        if hz is None and isinstance(doc.get("hz"), (int, float)):
            hz = float(doc["hz"])
        if isinstance(doc.get("duration_s"), (int, float)):
            duration = max(duration, float(doc["duration_s"]))
        if isinstance(doc.get("samples_dropped"), (int, float)):
            dropped += int(doc["samples_dropped"])
        if isinstance(doc.get("ticks"), (int, float)):
            ticks += int(doc["ticks"])
        if trace_id is None and doc.get("trace_id"):
            trace_id = doc.get("trace_id")
            span_id = doc.get("span_id")
        default_worker = doc.get("worker")
        for stack in doc.get("stacks") or []:
            level = stack.get("level")
            worker = stack.get("worker", default_worker)
            key = (tuple(str(f) for f in stack.get("frames") or ()),
                   stack.get("span"), stack.get("opcode"),
                   int(level) if isinstance(level, (int, float)) else None,
                   int(worker) if isinstance(worker, (int, float)) else None)
            merged[key] = merged.get(key, 0) + int(stack.get("count", 0))
    stacks = [
        {"frames": list(frames), "count": count,
         **({"span": span} if span is not None else {}),
         **({"opcode": opcode} if opcode is not None else {}),
         **({"level": level} if level is not None else {}),
         **({"worker": worker} if worker is not None else {})}
        for (frames, span, opcode, level, worker), count
        in sorted(merged.items(),
                  key=lambda item: (-item[1], item[0][0], item[0][1] or "",
                                    item[0][2] or "",
                                    -1 if item[0][3] is None else item[0][3],
                                    -1 if item[0][4] is None else item[0][4]))
    ]
    out: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "v": PROFILE_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "hz": hz if hz is not None else DEFAULT_HZ,
        "duration_s": duration,
        "ticks": ticks,
        "samples": sum(merged.values()),
        "samples_dropped": dropped,
        "merged_from": len(docs),
        "stacks": stacks,
        "attribution": attribution_tables(stacks),
    }
    if trace_id:
        out["trace_id"] = trace_id
        out["span_id"] = span_id
    for key in ("benchmark", "machine"):
        values = {doc.get(key) for doc in docs if doc.get(key)}
        if len(values) == 1:
            out[key] = values.pop()
    return out


def collapsed_lines(doc: Dict[str, object]) -> List[str]:
    """Classic ``frame;frame;frame count`` collapsed-stack lines."""
    return [
        ";".join(str(f) for f in stack.get("frames") or ())
        + f" {int(stack.get('count', 0))}"
        for stack in doc.get("stacks") or []
    ]


def profile_summary(doc: Dict[str, object], top: int = 3) -> Dict[str, object]:
    """A few-hundred-byte distillation for RunReport notes / ledger rows."""
    stacks = doc.get("stacks") or []
    self_counts: Dict[str, int] = {}
    for stack in stacks:
        frames = stack.get("frames") or []
        if frames:
            leaf = str(frames[-1])
            self_counts[leaf] = self_counts.get(leaf, 0) + int(
                stack.get("count", 0))
    hottest = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    attribution = doc.get("attribution") or {}
    spans = attribution.get("spans") or {}
    top_spans = sorted(((k, v) for k, v in spans.items() if k != NONE_KEY),
                       key=lambda kv: (-kv[1], kv[0]))[:top]
    return {
        "hz": doc.get("hz"),
        "samples": doc.get("samples", 0),
        "samples_dropped": doc.get("samples_dropped", 0),
        "duration_s": doc.get("duration_s"),
        "stacks": len(stacks),
        "top_self": [{"frame": name, "samples": count}
                     for name, count in hottest],
        "top_spans": [{"span": name, "samples": count}
                      for name, count in top_spans],
    }


def active_profile_summary() -> Optional[Dict[str, object]]:
    """In-flight profile summary from the running profiler, if any.

    Fail-soft (returns None on any error): this feeds RunReport notes and
    must never break report building.
    """
    profiler = _ACTIVE
    if profiler is None:
        return None
    try:
        return profile_summary(profiler.to_doc())
    except Exception:  # noqa: BLE001 - summaries are best-effort
        return None


def record_profile(doc: Dict[str, object], path=None, **fields) -> None:
    """Append a trace-joined ``profile`` row to the run ledger (fail-soft)."""
    try:
        from .ledger import record_run
        summary = profile_summary(doc)
        row: Dict[str, object] = {
            "hz": doc.get("hz"),
            "samples": doc.get("samples", 0),
            "duration_s": doc.get("duration_s"),
            "profile": summary,
        }
        if path:
            row["artifact"] = str(path)
        for key in ("benchmark", "machine"):
            if doc.get(key):
                row[key] = doc[key]
        row.update({k: v for k, v in fields.items() if v is not None})
        record_run("profile", **row)
    except Exception:  # noqa: BLE001 - the ledger must never break a run
        pass
