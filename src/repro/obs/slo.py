"""Live SLO rule engine on the metrics path.

A rule states the *service-level objective* -- the condition that should
hold -- against one counter-registry metric::

    sim.sig_cache.hits{machine=Cambricon-F1} > 100 for 5s as warm-cache
    plan.peak_live_bytes < 2e9
    store.zero_copy_reads >= 1

Grammar (:func:`parse_slo_rule`)::

    <metric>[{k=v,...}] <op> <bound> [for <N>s] [as <name>]

``<op>`` is one of ``<``, ``<=``, ``>``, ``>=``; the label selector
matches any series whose labels *include* every listed pair (an empty
selector matches all series of the metric).  A rule with no matching
series is "no data", which is never a violation -- arming rules before
the workload starts must not page anyone.

:class:`SLOEngine` evaluates its rules against the live registry (the
:class:`~repro.obs.server.MetricsServer` calls :meth:`SLOEngine.evaluate`
on every scrape, so the alert path needs no extra thread).  A violation
must *sustain* for the rule's window before the alert fires -- one bad
scrape is a blip, not an incident.  On fire the engine emits an
``alert`` event into the event log (severity ``error``) and bumps
``alerts.fired{rule=}``; on recovery it emits ``alert.clear`` (severity
``info``) and bumps ``alerts.cleared{rule=}``.  Two gauges keep the
exposition honest at all times: ``alerts.active`` (currently-firing
count, the ``repro_alerts_active`` series the acceptance criteria name)
and per-rule ``alerts.firing{rule=}`` 0/1 flags that ``repro top`` turns
into its alerts strip.  :meth:`SLOEngine.document` renders the
``repro.obs.alerts`` v1 JSON served at ``/alerts``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry.counters import CounterRegistry, format_series

ALERTS_SCHEMA = "repro.obs.alerts"
ALERTS_SCHEMA_VERSION = 1

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, b: v < b,
    "<=": lambda v, b: v <= b,
    ">": lambda v, b: v > b,
    ">=": lambda v, b: v >= b,
}


@dataclass(frozen=True)
class SLORule:
    """One declarative objective: ``metric{labels} op bound [for N s]``."""

    name: str
    metric: str
    op: str
    bound: float
    labels: Tuple[Tuple[str, str], ...] = ()
    sustain_s: float = 0.0

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.bound)

    def spec(self) -> str:
        """The rule back in its source syntax (round-trips via parse)."""
        selector = ""
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in self.labels)
            selector = f"{{{inner}}}"
        text = f"{self.metric}{selector} {self.op} {self.bound:g}"
        if self.sustain_s:
            text += f" for {self.sustain_s:g}s"
        return text


def parse_slo_rule(text: str) -> SLORule:
    """Parse ``<metric>[{k=v,...}] <op> <bound> [for <N>s] [as <name>]``.

    Raises :class:`ValueError` with a pointed message on bad syntax (the
    CLI maps that to exit 2).
    """
    raw = text.strip()
    name: Optional[str] = None
    if " as " in raw:
        raw, _, name_part = raw.rpartition(" as ")
        name = name_part.strip()
        if not name:
            raise ValueError(f"SLO rule {text!r}: empty name after 'as'")
        raw = raw.strip()
    sustain_s = 0.0
    if " for " in raw:
        raw, _, sustain_part = raw.rpartition(" for ")
        sustain_part = sustain_part.strip()
        if not sustain_part.endswith("s"):
            raise ValueError(
                f"SLO rule {text!r}: sustain window must end in 's' "
                f"(got {sustain_part!r})")
        try:
            sustain_s = float(sustain_part[:-1])
        except ValueError:
            raise ValueError(
                f"SLO rule {text!r}: bad sustain window {sustain_part!r}")
        if sustain_s < 0:
            raise ValueError(f"SLO rule {text!r}: negative sustain window")
        raw = raw.strip()
    # operator: try two-char forms first so '<=' never parses as '<'.
    op = None
    for candidate in ("<=", ">=", "<", ">"):
        if f" {candidate} " in raw:
            op = candidate
            break
    if op is None:
        raise ValueError(
            f"SLO rule {text!r}: expected one of < <= > >= "
            "between metric and bound")
    selector_part, _, bound_part = raw.partition(f" {op} ")
    try:
        bound = float(bound_part.strip())
    except ValueError:
        raise ValueError(f"SLO rule {text!r}: bad bound {bound_part.strip()!r}")
    selector_part = selector_part.strip()
    labels: List[Tuple[str, str]] = []
    metric = selector_part
    if "{" in selector_part:
        if not selector_part.endswith("}"):
            raise ValueError(f"SLO rule {text!r}: unterminated label selector")
        metric, _, inner = selector_part[:-1].partition("{")
        for pair in filter(None, (p.strip() for p in inner.split(","))):
            key, eq, value = pair.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"SLO rule {text!r}: label selector entries must be "
                    f"k=v (got {pair!r})")
            labels.append((key.strip(), value.strip().strip('"')))
    if not metric:
        raise ValueError(f"SLO rule {text!r}: missing metric name")
    return SLORule(
        name=name or metric,
        metric=metric,
        op=op,
        bound=bound,
        labels=tuple(sorted(labels)),
        sustain_s=sustain_s,
    )


@dataclass
class _RuleState:
    violating_since: Optional[float] = None
    firing: bool = False
    fired_at: Optional[float] = None
    #: worst offending series at last evaluation: (series_key, value)
    worst: Optional[Tuple[str, float]] = None


class SLOEngine:
    """Evaluates SLO rules against a registry; fires/clears alert events."""

    def __init__(
        self,
        rules: Sequence[SLORule],
        registry: CounterRegistry,
        event_log=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rules = list(rules)
        self.registry = registry
        self.event_log = event_log
        self.clock = clock
        self._state: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules}

    # -- matching -----------------------------------------------------------

    def _violations(self, rule: SLORule) -> List[Tuple[str, float]]:
        """Every matching series whose value breaks the objective."""
        out: List[Tuple[str, float]] = []
        want = dict(rule.labels)
        for inst in self.registry.series(rule.metric):
            if inst.name != rule.metric:
                continue
            have = dict(inst.labels)
            if any(have.get(k) != v for k, v in want.items()):
                continue
            value = inst.snapshot()
            if isinstance(value, dict):  # histogram: judge the mean
                value = value.get("mean", 0.0)
            if not isinstance(value, (int, float)):
                continue
            if not rule.holds(float(value)):
                out.append((format_series(inst.name, inst.labels),
                            float(value)))
        return out

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """One evaluation pass; returns the currently active alerts."""
        now = self.clock() if now is None else now
        for rule in self.rules:
            state = self._state[rule.name]
            violations = self._violations(rule)
            if violations:
                # worst = farthest from the bound in the bad direction
                state.worst = max(
                    violations,
                    key=lambda sv: abs(sv[1] - rule.bound))
                if state.violating_since is None:
                    state.violating_since = now
                sustained = now - state.violating_since >= rule.sustain_s
                if sustained and not state.firing:
                    state.firing = True
                    state.fired_at = now
                    self._emit("alert", "error", rule, state)
                    if self.registry.enabled:
                        self.registry.count("alerts.fired",
                                            labels={"rule": rule.name})
            else:
                if state.firing:
                    self._emit("alert.clear", "info", rule, state)
                    if self.registry.enabled:
                        self.registry.count("alerts.cleared",
                                            labels={"rule": rule.name})
                state.violating_since = None
                state.firing = False
                state.fired_at = None
                state.worst = None
        self._publish_gauges()
        return self.active()

    def _emit(self, event: str, severity: str, rule: SLORule,
              state: _RuleState) -> None:
        if self.event_log is None:
            return
        series, value = state.worst or ("-", 0.0)
        try:
            self.event_log.emit(
                "slo", event, severity=severity,
                rule=rule.name, spec=rule.spec(),
                series=series, value=value, bound=rule.bound)
        except Exception:  # alerting must never take the run down
            pass

    def _publish_gauges(self) -> None:
        if not self.registry.enabled:
            return
        active = sum(1 for s in self._state.values() if s.firing)
        self.registry.set_gauge("alerts.active", float(active))
        for rule in self.rules:
            self.registry.set_gauge(
                "alerts.firing", 1.0 if self._state[rule.name].firing else 0.0,
                labels={"rule": rule.name})

    # -- reading ------------------------------------------------------------

    def active(self) -> List[Dict[str, object]]:
        """The currently firing alerts, oldest first."""
        out = []
        now = self.clock()
        for rule in self.rules:
            state = self._state[rule.name]
            if not state.firing:
                continue
            series, value = state.worst or ("-", 0.0)
            out.append({
                "rule": rule.name,
                "spec": rule.spec(),
                "series": series,
                "value": value,
                "bound": rule.bound,
                "firing_for_s": (now - state.fired_at)
                if state.fired_at is not None else 0.0,
            })
        out.sort(key=lambda a: -a["firing_for_s"])
        return out

    def document(self) -> Dict[str, object]:
        """The ``repro.obs.alerts`` v1 JSON served at ``/alerts``."""
        return {
            "schema": ALERTS_SCHEMA,
            "v": ALERTS_SCHEMA_VERSION,
            "ts": time.time(),
            "rules": [rule.spec() + (f" as {rule.name}"
                                     if rule.name != rule.metric else "")
                      for rule in self.rules],
            "active": self.active(),
        }


def empty_alerts_document() -> Dict[str, object]:
    """What ``/alerts`` serves when no SLO engine is armed."""
    return {
        "schema": ALERTS_SCHEMA,
        "v": ALERTS_SCHEMA_VERSION,
        "ts": time.time(),
        "rules": [],
        "active": [],
    }
