"""Structured event log: schema-versioned JSONL events with run context.

Where the counter registry answers "how many" and the tracer answers "how
long", the event log answers **"what happened"**: discrete, timestamped,
machine-readable records -- a program started, an instruction failed, the
simulator memoized a level -- each stamped with whatever run context
(run id, benchmark, machine, instruction index, fractal level) was active
when it fired.

Design points, mirroring :mod:`repro.telemetry`:

* **Null-object disabled fast path.**  The process-wide log is disabled by
  default; every instrumented call site pays one attribute check
  (``log.enabled``) and nothing else, keeping the <5% telemetry overhead
  budget intact.
* **Context propagation via contextvars.**  :func:`event_context` pushes
  key/value pairs onto a :class:`contextvars.ContextVar`; every event
  emitted inside the ``with`` block carries the merged context in its
  ``ctx`` field.  Context stacking composes across call layers (runtime
  session -> executor program -> instruction) without threading arguments.
* **Per-subsystem loggers.**  :func:`logger` hands out cached
  :class:`SubsystemLogger` facades (``executor``, ``decompose``, ``sim``,
  ``runtime``, ``ops``) with ``debug/info/warn/error`` methods.
* **Severity + sampling controls.**  A minimum severity gates cheap events
  out entirely; per-``(subsystem, event)`` stride sampling thins repetitive
  debug streams while guaranteeing every distinct event name still appears.
* **Bounded memory.**  Retained events live in a ring (``deque`` with
  ``maxlen``); evictions are counted in ``dropped`` so consumers know the
  window is partial.  An optional JSONL sink streams every accepted event
  to disk for ``repro events tail``.

Event schema (one JSON object per line)::

    {"schema": "repro.obs.event", "v": 1, "seq": 17, "ts": 1722950000.123,
     "subsystem": "executor", "event": "instruction.fail",
     "severity": "error", "ctx": {"run": "...", "instruction": 3,
     "opcode": "MatMul"}, "error": "..."}

``schema``/``v`` follow the RunReport policy (docs/TELEMETRY.md): adding
fields never bumps ``v``; consumers ignore unknown keys.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

EVENT_SCHEMA = "repro.obs.event"
EVENT_SCHEMA_VERSION = 1

#: recognised severities, weakest first.
SEVERITIES = ("debug", "info", "warn", "error")
SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: run context propagated to every event emitted inside an
#: :func:`event_context` block.  Stored as a flat tuple of (key, value)
#: pairs: copying on push is one tuple concat, and ``dict()`` at emit time
#: resolves duplicate keys innermost-wins.
_CONTEXT: contextvars.ContextVar[Tuple[Tuple[str, object], ...]] = \
    contextvars.ContextVar("repro_obs_context", default=())


@contextmanager
def event_context(**fields):
    """Push context fields for the duration of the ``with`` block.

    Nested blocks merge; inner values win on key collision.  Restoring via
    the contextvar token keeps the stack correct across generators and
    threads.
    """
    token = _CONTEXT.set(_CONTEXT.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def current_context() -> Dict[str, object]:
    """The merged context dict active right now (innermost wins)."""
    return dict(_CONTEXT.get())


def _json_safe(value):
    """Best-effort JSON coercion -- the event log must never raise."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class EventLog:
    """Bounded, severity-filtered, sampled structured event log."""

    def __init__(
        self,
        enabled: bool = False,
        capacity: int = 2048,
        min_severity: str = "debug",
        debug_sample: int = 1,
        clock: Callable[[], float] = time.time,
    ):
        if min_severity not in SEVERITY_RANK:
            raise ValueError(f"unknown severity {min_severity!r}")
        self.enabled = enabled
        self.capacity = capacity
        self.min_severity = min_severity
        #: keep every N-th *debug* event per (subsystem, event) key.
        self.debug_sample = max(1, int(debug_sample))
        self._clock = clock
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        #: events evicted from the ring (the retained window is partial).
        self.dropped = 0
        #: events filtered by severity or sampled out (never recorded).
        self.suppressed = 0
        self._by_severity: Dict[str, int] = {}
        self._by_subsystem: Dict[str, int] = {}
        self._sample_state: Dict[Tuple[str, str], int] = {}
        self._sink = None  # optional open file object (JSONL)
        self._sink_path: Optional[str] = None
        self._sink_max_bytes: Optional[int] = None
        self._sink_bytes = 0
        #: completed ``.1`` rollovers of the JSONL sink.
        self.sink_rotations = 0
        self._listeners: List[Callable[[Dict[str, object]], None]] = []

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded events and counts (enabled flag and sink kept)."""
        self._ring.clear()
        self._seq = 0
        self.dropped = 0
        self.suppressed = 0
        self.sink_rotations = 0
        self._by_severity = {}
        self._by_subsystem = {}
        self._sample_state = {}

    # -- sinks --------------------------------------------------------------

    def attach_jsonl(self, path: str,
                     max_bytes: Optional[int] = None) -> None:
        """Stream every accepted event to ``path`` as JSON lines.

        The handle is owned by the log; call :meth:`close_sink` (or use a
        ``try/finally``) when the run ends.  Re-attaching closes the
        previous sink first.

        With ``max_bytes`` the sink is size-bounded: when a write would
        push the file past the limit, the current file is atomically
        rolled to ``path + ".1"`` (one generation, replacing any previous
        rollover) and a fresh ``path`` is started -- so a long-lived
        ``serve-metrics --hold`` run holds at most ~2x ``max_bytes`` of
        events on disk.  Rollovers are counted in ``sink_rotations``.
        """
        self.close_sink()
        self._sink = open(path, "w", encoding="utf-8")  # noqa: SIM115 - long-lived sink
        self._sink_path = path
        self._sink_max_bytes = int(max_bytes) if max_bytes else None
        self._sink_bytes = 0

    def close_sink(self) -> Optional[str]:
        """Close the JSONL sink (if any); returns its path."""
        path, sink = self._sink_path, self._sink
        self._sink = None
        self._sink_path = None
        self._sink_max_bytes = None
        self._sink_bytes = 0
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass
        return path

    def _rotate_sink(self) -> None:
        """Roll the sink file to ``.1`` and reopen a fresh one (atomic)."""
        path = self._sink_path
        max_bytes = self._sink_max_bytes
        try:
            self._sink.close()
        except OSError:
            pass
        self._sink = None
        try:
            os.replace(path, path + ".1")
            self._sink = open(path, "w", encoding="utf-8")  # noqa: SIM115 - long-lived sink
        except OSError:
            # Rotation failure must never take the run down; drop the sink.
            self.close_sink()
            return
        self._sink_path = path
        self._sink_max_bytes = max_bytes
        self._sink_bytes = 0
        self.sink_rotations += 1

    def add_listener(self, fn: Callable[[Dict[str, object]], None]) -> None:
        """Call ``fn(record)`` for every accepted event (e.g. a watchdog)."""
        self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    # -- emission -----------------------------------------------------------

    def emit(self, subsystem: str, event: str, severity: str = "info",
             **fields) -> Optional[Dict[str, object]]:
        """Record one event; returns the record, or None when filtered."""
        if not self.enabled:
            return None
        rank = SEVERITY_RANK.get(severity)
        if rank is None:
            severity, rank = "info", SEVERITY_RANK["info"]
        if rank < SEVERITY_RANK[self.min_severity]:
            self.suppressed += 1
            return None
        if severity == "debug" and self.debug_sample > 1:
            key = (subsystem, event)
            n = self._sample_state.get(key, 0)
            self._sample_state[key] = n + 1
            if n % self.debug_sample:
                self.suppressed += 1
                return None
        self._seq += 1
        record: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "ts": self._clock(),
            "subsystem": subsystem,
            "event": event,
            "severity": severity,
        }
        ctx = _CONTEXT.get()
        if ctx:
            record["ctx"] = _json_safe(dict(ctx))
        for key, value in fields.items():
            if key not in record:
                record[key] = _json_safe(value)
        self._accept(record)
        return record

    def _accept(self, record: Dict[str, object]) -> None:
        """Ring + accounting + sink + listeners for one accepted record."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        severity = str(record.get("severity", "info"))
        subsystem = str(record.get("subsystem", ""))
        self._by_severity[severity] = self._by_severity.get(severity, 0) + 1
        self._by_subsystem[subsystem] = self._by_subsystem.get(subsystem, 0) + 1
        if self._sink is not None:
            try:
                line = json.dumps(record, default=repr) + "\n"
                if (self._sink_max_bytes is not None and self._sink_bytes
                        and self._sink_bytes + len(line) > self._sink_max_bytes):
                    self._rotate_sink()
                if self._sink is not None:
                    self._sink.write(line)
                    self._sink.flush()
                    self._sink_bytes += len(line)
            except (OSError, ValueError):
                # A dead sink must never take the run down; drop it.
                self.close_sink()
        for fn in self._listeners:
            fn(record)

    def ingest(self, record: Dict[str, object], **extra) -> Optional[Dict[str, object]]:
        """Adopt an externally produced event record (e.g. a pool worker's).

        The record is re-stamped with this log's own ``seq`` (its origin
        sequence number is preserved as ``origin_seq``), merged with any
        ``extra`` fields (``worker=<n>``), and then treated exactly like a
        locally emitted event: ring, accounting, JSONL sink, listeners.
        Severity filtering and sampling are *not* re-applied -- the origin
        log already made those calls.
        """
        if not self.enabled or not isinstance(record, dict):
            return None
        adopted = dict(record)
        origin_seq = adopted.get("seq")
        self._seq += 1
        adopted["seq"] = self._seq
        if origin_seq is not None:
            adopted["origin_seq"] = origin_seq
        for key, value in extra.items():
            adopted[key] = _json_safe(value)
        self._accept(adopted)
        return adopted

    # -- reading ------------------------------------------------------------

    @property
    def total(self) -> int:
        """Events accepted since the last reset (incl. evicted ones)."""
        return self._seq

    def events(self, last: Optional[int] = None) -> List[Dict[str, object]]:
        """Retained events, oldest first (at most ``last`` newest ones)."""
        out = list(self._ring)
        if last is not None and last >= 0:
            out = out[-last:] if last else []
        return out

    def summary(self) -> Dict[str, object]:
        """The RunReport v3 ``events`` section for this log."""
        return {
            "total": self._seq,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "suppressed": self.suppressed,
            "by_severity": dict(sorted(self._by_severity.items())),
            "by_subsystem": dict(sorted(self._by_subsystem.items())),
        }


class SubsystemLogger:
    """Named facade over the process-wide log (``obs.logger("sim")``)."""

    __slots__ = ("subsystem",)

    def __init__(self, subsystem: str):
        self.subsystem = subsystem

    def debug(self, event: str, **fields):
        log = _LOG
        if log.enabled:
            log.emit(self.subsystem, event, "debug", **fields)

    def info(self, event: str, **fields):
        log = _LOG
        if log.enabled:
            log.emit(self.subsystem, event, "info", **fields)

    def warn(self, event: str, **fields):
        log = _LOG
        if log.enabled:
            log.emit(self.subsystem, event, "warn", **fields)

    def error(self, event: str, **fields):
        log = _LOG
        if log.enabled:
            log.emit(self.subsystem, event, "error", **fields)

    @property
    def enabled(self) -> bool:
        return _LOG.enabled


#: the process-wide event log (disabled by default, like the registry).
_LOG = EventLog(enabled=False)

_LOGGERS: Dict[str, SubsystemLogger] = {}


def get_event_log() -> EventLog:
    """The process-wide structured event log."""
    return _LOG


def logger(subsystem: str) -> SubsystemLogger:
    """A cached per-subsystem logger bound to the global log."""
    out = _LOGGERS.get(subsystem)
    if out is None:
        out = _LOGGERS[subsystem] = SubsystemLogger(subsystem)
    return out


def log_event(subsystem: str, event: str, severity: str = "info", **fields):
    """One-shot emission helper (no-op while the log is disabled)."""
    if _LOG.enabled:
        _LOG.emit(subsystem, event, severity, **fields)


def events_summary(log: Optional[EventLog] = None) -> Dict[str, object]:
    """Summary section for RunReport v3 (empty-log safe)."""
    return (log or _LOG).summary()


def iter_jsonl(lines: Iterable[str]):
    """Parse JSONL event lines, skipping blanks and corrupt records.

    Yields ``(record, None)`` for good lines and ``(None, line)`` for
    undecodable ones so callers can count corruption without dying on it
    (crash bundles are written mid-flight; a torn last line is expected).
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            yield None, line
            continue
        if isinstance(obj, dict):
            yield obj, None
        else:
            yield None, line
