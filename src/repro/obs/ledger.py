"""Persistent run ledger: an append-only history of every run.

Nothing in the stack remembered a run after its process exited -- crash
bundles capture failures and RunReports capture single runs on request,
but the ROADMAP's serving tier and surrogate-model sweeps both need a
*queryable history*: which programs ran on which machine fingerprints,
how long they took, where the time went, which cache tiers fired, and
which trace each row belongs to.

The ledger is a directory (``$REPRO_LEDGER``, else
``$XDG_CACHE_HOME/repro/ledger``, else ``~/.cache/repro/ledger``)
holding:

* ``runs.jsonl`` -- the source of truth: one schema-versioned JSON
  object per row, append-only (open in ``"a"``, write one line, flush).
  Rows are never rewritten; corruption can only tear the final line,
  which readers skip via :func:`repro.obs.events.iter_jsonl`.
* ``index.json`` -- a derived per-trace summary (row counts, first/last
  timestamps, kinds, benchmarks, machines) for cheap ``repro trace ls``.
  Written atomically (tmp + ``os.replace``); when it is missing or
  corrupt it is rebuilt from ``runs.jsonl`` with a warning -- the index
  is a cache, never the truth.

Row schema (``repro.obs.ledger`` v1)::

    {"schema": "repro.obs.ledger", "v": 1, "ts": 1722950000.1,
     "kind": "profile", "trace_id": "...", "span_id": "...",
     "benchmark": "mm_fc", "machine": "Cambricon-F1",
     "fingerprint": "9f2c...", "program_digest": "a11b...",
     "makespan_s": 0.012, "attribution": {"compulsory": 0.6, ...},
     "cache": {"plan.compile_hits{tier=memory}": 3, ...},
     "crash_bundle": "crash_bundles/run-mm_fc-.../", ...}

Adding fields never bumps ``v`` (the RunReport policy); consumers ignore
unknown keys.  Set ``REPRO_LEDGER=off`` (or ``0``/``none``) to disable
persistence entirely; all module-level helpers are fail-soft so a
read-only cache directory can never take a run down.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from .events import iter_jsonl

LEDGER_SCHEMA = "repro.obs.ledger"
LEDGER_SCHEMA_VERSION = 1

INDEX_SCHEMA = "repro.obs.ledger.index"
INDEX_SCHEMA_VERSION = 1

#: $REPRO_LEDGER values that disable persistence entirely.
_OFF_VALUES = {"off", "0", "none", "disabled"}

#: index summary fields accumulated per trace, in row order.
_TRACE_LIST_FIELDS = ("kinds", "benchmarks", "machines")


def ledger_enabled() -> bool:
    """False when ``$REPRO_LEDGER`` explicitly turns the ledger off."""
    value = os.environ.get("REPRO_LEDGER")
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES and value.strip() != ""


def default_ledger_dir() -> Path:
    """``$REPRO_LEDGER`` > ``$XDG_CACHE_HOME/repro/ledger`` > ``~/.cache``."""
    env = os.environ.get("REPRO_LEDGER")
    if env and env.strip().lower() not in _OFF_VALUES:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "ledger"


class RunLedger:
    """Append-only JSONL run history with a derived atomic index."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None \
            else default_ledger_dir()
        self.runs_path = self.directory / "runs.jsonl"
        self.index_path = self.directory / "index.json"

    # -- writing ------------------------------------------------------------

    def record(self, kind: str, **fields) -> Dict[str, object]:
        """Append one row; returns the row as written.

        ``trace_id``/``span_id`` are stamped from the current
        :mod:`repro.obs.trace` context when the caller doesn't pass them,
        so any code running inside a ``trace_scope`` lands in the right
        trace for free.
        """
        row: Dict[str, object] = {
            "schema": LEDGER_SCHEMA,
            "v": LEDGER_SCHEMA_VERSION,
            "ts": time.time(),
            "kind": kind,
        }
        if "trace_id" not in fields or fields.get("trace_id") is None:
            from .trace import current_trace
            ctx = current_trace()
            if ctx is not None:
                fields.setdefault("trace_id", ctx.trace_id)
                fields.setdefault("span_id", ctx.span_id)
                if ctx.worker is not None:
                    fields.setdefault("worker", ctx.worker)
        for key, value in fields.items():
            if value is not None:
                row[key] = value
        self.directory.mkdir(parents=True, exist_ok=True)
        # Load (possibly rebuilding) the index BEFORE appending, so a
        # rebuild replaying runs.jsonl cannot double-count the new row.
        index = self._load_index()
        with open(self.runs_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, default=repr))
            fh.write("\n")
        self._fold_row(index, row)
        self._write_index(index)
        from ..telemetry import get_registry
        registry = get_registry()
        if registry.enabled:
            registry.count("ledger.rows", 1, {"kind": kind})
        return row

    # -- index maintenance --------------------------------------------------

    def _blank_index(self) -> Dict[str, object]:
        return {
            "schema": INDEX_SCHEMA,
            "v": INDEX_SCHEMA_VERSION,
            "rows": 0,
            "updated": 0.0,
            "traces": {},
        }

    def _load_index(self, rebuild: bool = True) -> Dict[str, object]:
        """The index, rebuilt from ``runs.jsonl`` if missing/corrupt."""
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                index = json.load(fh)
            if (isinstance(index, dict)
                    and index.get("schema") == INDEX_SCHEMA
                    and isinstance(index.get("traces"), dict)):
                return index
            raise ValueError("unrecognized index document")
        except FileNotFoundError:
            if self.runs_path.exists() and rebuild:
                return self.rebuild_index()
            return self._blank_index()
        except (OSError, ValueError) as exc:
            if not rebuild:
                return self._blank_index()
            warnings.warn(
                f"run ledger index {self.index_path} is corrupt ({exc}); "
                "rebuilding from runs.jsonl",
                RuntimeWarning, stacklevel=3,
            )
            from ..telemetry import get_registry
            registry = get_registry()
            if registry.enabled:
                registry.count("ledger.index_rebuilds", 1)
            return self.rebuild_index()

    def _fold_row(self, index: Dict[str, object], row: Dict[str, object]) -> None:
        index["rows"] = int(index.get("rows", 0)) + 1
        ts = float(row.get("ts", 0.0))
        index["updated"] = max(float(index.get("updated", 0.0)), ts)
        trace_id = row.get("trace_id")
        if not trace_id:
            return
        traces: Dict[str, Dict[str, object]] = index["traces"]
        entry = traces.get(str(trace_id))
        if entry is None:
            entry = traces[str(trace_id)] = {
                "rows": 0,
                "first_ts": ts,
                "last_ts": ts,
                "kinds": [],
                "benchmarks": [],
                "machines": [],
            }
        entry["rows"] = int(entry["rows"]) + 1
        entry["first_ts"] = min(float(entry["first_ts"]), ts)
        entry["last_ts"] = max(float(entry["last_ts"]), ts)
        for field, key in zip(_TRACE_LIST_FIELDS,
                              ("kind", "benchmark", "machine")):
            value = row.get(key)
            bucket = entry.setdefault(field, [])
            if value is not None and value not in bucket:
                bucket.append(value)

    def _write_index(self, index: Dict[str, object]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix="index.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(index, fh, indent=2, sort_keys=True, default=repr)
                fh.write("\n")
            os.replace(tmp, self.index_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def rebuild_index(self) -> Dict[str, object]:
        """Regenerate ``index.json`` by replaying every row of the log."""
        index = self._blank_index()
        for row in self.iter_rows():
            self._fold_row(index, row)
        self._write_index(index)
        return index

    # -- reading ------------------------------------------------------------

    def iter_rows(self):
        """Every decodable row of ``runs.jsonl``, oldest first."""
        try:
            with open(self.runs_path, encoding="utf-8") as fh:
                for record, _bad in iter_jsonl(fh):
                    if record is not None:
                        yield record
        except OSError:
            return

    def rows(self, trace_id: Optional[str] = None,
             last: Optional[int] = None) -> List[Dict[str, object]]:
        """Rows (optionally one trace's, optionally only the newest N).

        With ``last=N`` the scan holds at most N rows at a time (a
        bounded ``deque`` over :meth:`iter_rows`), so ``repro trace ls``
        stays cheap on long-lived ledgers instead of materializing the
        whole ``runs.jsonl``.
        """
        matching = (row for row in self.iter_rows()
                    if trace_id is None or row.get("trace_id") == trace_id)
        if last is not None and last >= 0:
            if last == 0:
                return []
            return list(deque(matching, maxlen=last))
        return list(matching)

    def traces(self) -> Dict[str, Dict[str, object]]:
        """Per-trace index summaries (``{trace_id: {rows, first_ts, ...}}``)."""
        return dict(self._load_index().get("traces", {}))


def get_ledger(directory: Optional[os.PathLike] = None) -> Optional[RunLedger]:
    """A :class:`RunLedger`, or None when ``$REPRO_LEDGER`` disables it."""
    if directory is None and not ledger_enabled():
        return None
    return RunLedger(directory)


def record_run(kind: str, directory: Optional[os.PathLike] = None,
               history: bool = True,
               **fields) -> Optional[Dict[str, object]]:
    """Fail-soft append: never raises, returns the row or None.

    The write sites (CLI commands, sweeps, crash scopes) must keep
    working on read-only filesystems and with the ledger disabled.

    Numeric headline fields of the row (makespan_s, compile_s, ...) are
    also distilled into the run-history store for the perf-trend
    sentinel; pass ``history=False`` when the caller records richer
    history itself (:func:`record_report` does, to avoid double points).
    """
    ledger = get_ledger(directory)
    row: Optional[Dict[str, object]] = None
    if ledger is not None:
        try:
            row = ledger.record(kind, **fields)
        except (OSError, ValueError):
            row = None
    if history:
        from .history import record_row_history
        record_row_history(kind, row if row is not None else fields)
    return row


def _cache_tiers(counters: Dict[str, object]) -> Dict[str, object]:
    """Plan/signature cache series worth remembering per run."""
    out = {}
    for key, value in counters.items():
        if (key.startswith(("plan.compile_hits", "plan.compile_misses",
                            "sim.sig_cache."))
                and isinstance(value, (int, float)) and value):
            out[key] = value
    return out


def record_report(report, kind: str = "run",
                  directory: Optional[os.PathLike] = None,
                  **extra) -> Optional[Dict[str, object]]:
    """Fail-soft append of one row distilled from a RunReport.

    Pulls the stable provenance out of the (much larger) report document:
    benchmark/machine, trace ids from ``notes``, makespan from the
    simulator section, the attribution taxonomy fractions, and any cache
    tiers that fired.  Extra fields (fingerprint, program digest, crash
    bundle path) ride along verbatim.
    """
    try:
        doc = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        fields: Dict[str, object] = {
            "benchmark": doc.get("benchmark"),
            "machine": doc.get("machine"),
        }
        notes = doc.get("notes") or {}
        if notes.get("trace_id"):
            fields["trace_id"] = notes["trace_id"]
            fields["span_id"] = notes.get("span_id")
        sim = doc.get("simulator") or {}
        if sim.get("total_time_s") is not None:
            fields["makespan_s"] = sim["total_time_s"]
        attribution = doc.get("attribution") or {}
        if attribution.get("classification"):
            fields["classification"] = attribution["classification"]
        if attribution.get("fractions"):
            fields["attribution"] = attribution["fractions"]
        tiers = _cache_tiers(doc.get("counters") or {})
        if tiers:
            fields["cache"] = tiers
        fields.update(extra)
        # The full report distills into richer history points than the
        # ledger row, so suppress the row-level hook and record from the
        # report document instead (one point per metric, not two).
        row = record_run(kind, directory=directory, history=False, **fields)
        from .history import record_report_history
        record_report_history(doc, source=kind)
        return row
    except Exception:
        return None
