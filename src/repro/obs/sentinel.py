"""Perf-trend sentinel: statistical regression detection over run history.

``tools/perf_gate.py`` diffs each run against a single hand-committed
baseline -- a point-in-time check that drifts stale and cannot tell a
one-off blip from a trend.  The sentinel instead reads the run-history
store (:mod:`repro.obs.history`) and asks, per
``(benchmark, machine, metric)`` series, whether the *latest* point is
statistically out of family with its own recent past:

* **Step detector** -- robust z-score of the latest value against the
  rolling median of the preceding window, with sigma = 1.4826 x MAD
  (the normal-consistent scaling).  Deterministic simulator metrics
  produce MAD = 0, so sigma is floored at
  ``max(rel_floor x |median|, abs_floor)`` -- a 5% step on a perfectly
  flat series still flags, femtosecond jitter does not.
* **Drift detector** -- a pure latest-vs-median z stays bounded (~1.6)
  on a steady ramp because the MAD inflates along with the drift, so the
  sentinel also compares the *newest half* of the window against the
  *oldest half* (median vs median, scaled by the oldest half's MAD).
  A gradual slope that never trips the step test accumulates here.

Both scores are direction-aware: each metric carries a **polarity**
(``up_bad`` for makespan/bytes/seconds, ``down_bad`` for
rates/throughput/speedups, ``neutral`` otherwise) so only movement in
the bad direction is a regression -- movement in the good direction is
reported as an improvement, never a failure.  Series shorter than the
warm-up floor are suppressed (``warmup``), so a fresh checkout with two
runs of history cannot cry wolf.

Exit contract mirrors ``repro diff`` / ``tools/perf_gate.py``:
0 = no regression, 2 = usage error, 3 = statistical regression.  The
result document (``repro.obs.sentinel`` v1) embeds the tail of each
series so the self-contained no-JS HTML report can draw sparklines.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from .history import RunHistory

SENTINEL_SCHEMA = "repro.obs.sentinel"
SENTINEL_SCHEMA_VERSION = 1

#: normal-consistency constant: sigma ~= 1.4826 * MAD for Gaussian data.
MAD_SIGMA = 1.4826

#: metric-name glob -> polarity; first match wins.  ``up_bad`` means an
#: increase is a regression (time, bytes); ``down_bad`` means a decrease
#: is (rates, throughput, speedups); ``neutral`` is informational only.
POLARITY_TABLE: Tuple[Tuple[str, str], ...] = (
    ("makespan_s", "up_bad"),
    ("compile_s", "up_bad"),
    ("*_time_s", "up_bad"),
    ("attr_*_s", "up_bad"),
    ("peak_live_bytes", "up_bad"),
    ("root_traffic_bytes", "up_bad"),
    ("*_bytes", "up_bad"),
    ("attained_ops", "down_bad"),
    ("peak_fraction", "down_bad"),
    ("*_hit_rate", "down_bad"),
    ("*_rate", "down_bad"),
    ("batched_speedup", "down_bad"),
    ("*speedup", "down_bad"),
    # Per-lane batch fallbacks growing means fusion groups stopped hitting
    # their stacked kernels (an opcode lost its registry entry or lowering
    # regressed) -- more lanes on the slow path is a perf regression.
    ("*fallback*", "up_bad"),
)


def metric_polarity(metric: str) -> str:
    """``up_bad`` / ``down_bad`` / ``neutral`` for a metric name."""
    for pattern, polarity in POLARITY_TABLE:
        if fnmatchcase(metric, pattern):
            return polarity
    return "neutral"


@dataclass(frozen=True)
class SentinelConfig:
    """Tunables for the detector (CLI: ``--window`` / ``--threshold``)."""

    #: how many preceding points form the rolling baseline.
    window: int = 10
    #: robust z-score above which a bad-direction move is a regression.
    threshold: float = 3.0
    #: minimum baseline points before verdicts are issued (warm-up
    #: suppression below this).
    min_points: int = 5
    #: sigma floor as a fraction of |median| (deterministic series).
    rel_floor: float = 1e-3
    #: absolute sigma floor (series whose median is ~0).
    abs_floor: float = 1e-12


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: Sequence[float], center: Optional[float] = None) -> float:
    if center is None:
        center = _median(values)
    return _median([abs(v - center) for v in values])


def _sigma(mad: float, median: float, config: SentinelConfig) -> float:
    return max(MAD_SIGMA * mad, config.rel_floor * abs(median),
               config.abs_floor)


def detect_series(values: Sequence[float],
                  config: SentinelConfig = SentinelConfig()) -> Dict[str, object]:
    """Verdict for one series (oldest -> newest), polarity-agnostic.

    Returns ``{status, step_z, drift_z, median, mad, latest, n}`` where
    ``status`` is ``warmup`` (not enough baseline), ``ok`` (in family),
    or ``high`` / ``low`` (latest is out of family in that direction --
    the caller maps direction to regression/improvement via polarity).
    The z-scores are *signed*: positive means the newer data is higher.
    """
    n = len(values)
    if n < config.min_points + 1:
        return {"status": "warmup", "step_z": 0.0, "drift_z": 0.0,
                "median": _median(values) if values else 0.0,
                "mad": 0.0, "latest": values[-1] if values else 0.0, "n": n}
    latest = values[-1]
    baseline = list(values[max(0, n - 1 - config.window):n - 1])
    median = _median(baseline)
    mad = _mad(baseline, median)
    step_z = (latest - median) / _sigma(mad, median, config)

    # Drift: newest half (including the latest point) vs oldest half of
    # the same window+1 tail.
    tail = list(values[max(0, n - 1 - config.window):])
    half = len(tail) // 2
    drift_z = 0.0
    if half >= 2:
        old, new = tail[:half], tail[-half:]
        old_median = _median(old)
        old_sigma = _sigma(_mad(old, old_median), old_median, config)
        drift_z = (_median(new) - old_median) / old_sigma

    worst = step_z if abs(step_z) >= abs(drift_z) else drift_z
    if abs(worst) > config.threshold:
        status = "high" if worst > 0 else "low"
    else:
        status = "ok"
    return {"status": status, "step_z": step_z, "drift_z": drift_z,
            "median": median, "mad": mad, "latest": latest, "n": n}


#: how many trailing points each result entry embeds (sparkline data).
_TAIL_POINTS = 60


@dataclass
class SentinelEntry:
    """One series verdict, ready for table / JSON / HTML rendering."""

    benchmark: str
    machine: str
    metric: str
    polarity: str
    #: ``regression`` / ``improvement`` / ``ok`` / ``warmup`` / ``neutral``
    status: str
    step_z: float
    drift_z: float
    median: float
    latest: float
    n: int
    values: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "metric": self.metric,
            "polarity": self.polarity,
            "status": self.status,
            "step_z": self.step_z,
            "drift_z": self.drift_z,
            "median": self.median,
            "latest": self.latest,
            "n": self.n,
            "values": self.values,
        }


@dataclass
class SentinelResult:
    """Every analyzed series plus the aggregate exit code."""

    entries: List[SentinelEntry]
    config: SentinelConfig

    @property
    def regressions(self) -> List[SentinelEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def exit_code(self) -> int:
        return 3 if self.regressions else 0


def _verdict(polarity: str, raw_status: str) -> str:
    if raw_status in ("warmup", "ok"):
        return raw_status
    if polarity == "neutral":
        return "neutral"
    bad_high = polarity == "up_bad"
    if (raw_status == "high") == bad_high:
        return "regression"
    return "improvement"


def analyze_history(
    history: RunHistory,
    config: SentinelConfig = SentinelConfig(),
    benchmark: Optional[str] = None,
    machine: Optional[str] = None,
    metric_glob: Optional[str] = None,
) -> SentinelResult:
    """Run the detector over every matching series of a history store."""
    entries: List[SentinelEntry] = []
    for (bench, mach, metric), points in sorted(
            history.series(benchmark=benchmark, machine=machine).items()):
        if metric_glob and not fnmatchcase(metric, metric_glob):
            continue
        values = [v for _ts, v in points]
        verdict = detect_series(values, config)
        polarity = metric_polarity(metric)
        entries.append(SentinelEntry(
            benchmark=bench,
            machine=mach,
            metric=metric,
            polarity=polarity,
            status=_verdict(polarity, str(verdict["status"])),
            step_z=float(verdict["step_z"]),
            drift_z=float(verdict["drift_z"]),
            median=float(verdict["median"]),
            latest=float(verdict["latest"]),
            n=int(verdict["n"]),
            values=values[-_TAIL_POINTS:],
        ))
    result = SentinelResult(entries=entries, config=config)
    from ..telemetry import get_registry
    registry = get_registry()
    if registry.enabled:
        registry.set_gauge("sentinel.series", float(len(entries)))
        registry.set_gauge("sentinel.regressions",
                           float(len(result.regressions)))
    return result


def sentinel_document(result: SentinelResult) -> Dict[str, object]:
    """The ``repro.obs.sentinel`` v1 JSON document."""
    return {
        "schema": SENTINEL_SCHEMA,
        "v": SENTINEL_SCHEMA_VERSION,
        "config": {
            "window": result.config.window,
            "threshold": result.config.threshold,
            "min_points": result.config.min_points,
        },
        "series": len(result.entries),
        "regressions": len(result.regressions),
        "exit_code": result.exit_code,
        "entries": [e.to_dict() for e in result.entries],
    }


def format_table(result: SentinelResult) -> str:
    """Human-readable verdict table, regressions first."""
    order = {"regression": 0, "improvement": 1, "neutral": 2,
             "ok": 3, "warmup": 4}
    rows = sorted(result.entries,
                  key=lambda e: (order.get(e.status, 5), e.benchmark,
                                 e.metric))
    lines = [f"{'status':<12} {'benchmark':<16} {'machine':<16} "
             f"{'metric':<22} {'n':>4} {'step_z':>8} {'drift_z':>8} "
             f"{'median':>12} {'latest':>12}"]
    lines.append("-" * len(lines[0]))
    for e in rows:
        lines.append(
            f"{e.status:<12} {e.benchmark:<16.16} {e.machine:<16.16} "
            f"{e.metric:<22.22} {e.n:>4d} {e.step_z:>8.2f} "
            f"{e.drift_z:>8.2f} {e.median:>12.4g} {e.latest:>12.4g}")
    reg = len(result.regressions)
    lines.append("")
    lines.append(
        f"{len(result.entries)} series, {reg} regression"
        f"{'' if reg == 1 else 's'} "
        f"(window={result.config.window}, "
        f"threshold={result.config.threshold:g}, "
        f"warm-up below {result.config.min_points + 1} points)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# HTML trend report (self-contained, no JS -- the flamegraph idiom)
# ---------------------------------------------------------------------------

_STATUS_COLORS = {
    "regression": "#c0392b",
    "improvement": "#1e8449",
    "ok": "#566573",
    "warmup": "#95a5a6",
    "neutral": "#7d6608",
}


def _sparkline_svg(values: Sequence[float], color: str,
                   width: int = 220, height: int = 36) -> str:
    """Inline SVG polyline of a series, last point emphasized."""
    if len(values) < 2:
        return f'<svg width="{width}" height="{height}"></svg>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 3
    n = len(values)
    coords = []
    for i, v in enumerate(values):
        x = pad + i * (width - 2 * pad) / (n - 1)
        y = height - pad - (v - lo) * (height - 2 * pad) / span
        coords.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = coords[-1].split(",")
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{" ".join(coords)}" fill="none" '
        f'stroke="{color}" stroke-width="1.5"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2.5" fill="{color}"/>'
        "</svg>"
    )


def render_trend_html(result: SentinelResult,
                      title: str = "repro perf-trend sentinel") -> str:
    """Self-contained HTML trend report with per-metric sparklines."""
    order = {"regression": 0, "improvement": 1, "neutral": 2,
             "ok": 3, "warmup": 4}
    rows = sorted(result.entries,
                  key=lambda e: (order.get(e.status, 5), e.benchmark,
                                 e.metric))
    body: List[str] = []
    for e in rows:
        color = _STATUS_COLORS.get(e.status, "#566573")
        spark = _sparkline_svg(e.values, color)
        body.append(
            "<tr>"
            f'<td><span class="badge" style="background:{color}">'
            f"{html.escape(e.status)}</span></td>"
            f"<td>{html.escape(e.benchmark)}</td>"
            f"<td>{html.escape(e.machine)}</td>"
            f"<td><code>{html.escape(e.metric)}</code> "
            f'<span class="pol">({html.escape(e.polarity)})</span></td>'
            f'<td class="spark">{spark}</td>'
            f'<td class="num">{e.n}</td>'
            f'<td class="num">{e.step_z:.2f}</td>'
            f'<td class="num">{e.drift_z:.2f}</td>'
            f'<td class="num">{e.median:.4g}</td>'
            f'<td class="num">{e.latest:.4g}</td>'
            "</tr>")
    reg = len(result.regressions)
    summary = (f"{len(result.entries)} series &middot; {reg} regression"
               f"{'' if reg == 1 else 's'} &middot; "
               f"window={result.config.window}, "
               f"threshold={result.config.threshold:g}")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 1.5rem; color: #1c2833; }}
h1 {{ font-size: 1.2rem; }}
.summary {{ color: #566573; margin-bottom: 1rem; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ padding: 4px 10px; text-align: left; font-size: 0.85rem;
          border-bottom: 1px solid #eaecee; }}
td.num, th.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
td.spark svg {{ display: block; }}
.badge {{ color: #fff; border-radius: 3px; padding: 1px 7px;
          font-size: 0.75rem; }}
.pol {{ color: #95a5a6; font-size: 0.75rem; }}
code {{ font-size: 0.85rem; }}
</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<p class="summary">{summary}</p>
<table>
<thead><tr><th>status</th><th>benchmark</th><th>machine</th>
<th>metric</th><th>trend</th><th class="num">n</th>
<th class="num">step z</th><th class="num">drift z</th>
<th class="num">median</th><th class="num">latest</th></tr></thead>
<tbody>
{chr(10).join(body)}
</tbody>
</table>
</body>
</html>
"""
