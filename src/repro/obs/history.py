"""Run-history store: per-(benchmark, machine, metric) time series.

Eight PRs of instrumentation all measure *one run at a time* -- the
ledger remembers rows, RunReports snapshot counters, BENCH reports diff
against a single hand-committed baseline.  Nothing watches the numbers
**across** runs.  This module closes the time axis: every ledger row,
RunReport and BENCH suite report is distilled into flat metric points

    (benchmark, machine, metric) -> [(ts, value), ...]

appended to an append-only ``history.jsonl`` that the perf-trend
sentinel (:mod:`repro.obs.sentinel`) reads to detect statistical
regressions, replacing point-in-time baseline diffs with longitudinal
self-gating.

Storage follows the run-ledger contract exactly (docs/OBSERVABILITY.md):

* ``history.jsonl`` -- the source of truth: one schema-versioned JSON
  point per line, append-only; corruption can only tear the final line,
  which readers skip via :func:`repro.obs.events.iter_jsonl`.
* ``history_index.json`` -- a derived per-series summary (point counts,
  first/last timestamps, last value) written atomically (tmp +
  ``os.replace``) and rebuilt from the log with a ``RuntimeWarning``
  when missing or corrupt.  The index is a cache, never the truth.

Point schema (``repro.obs.history`` v1)::

    {"schema": "repro.obs.history", "v": 1, "ts": 1722950000.1,
     "benchmark": "mm_fc", "machine": "Cambricon-F1",
     "metric": "makespan_s", "value": 0.012, "source": "profile",
     "trace_id": "..."}

Adding fields never bumps ``v`` (the RunReport policy); consumers ignore
unknown keys.  The directory resolves ``$REPRO_HISTORY`` first (with the
same ``off``/``0``/``none``/``disabled`` kill switch as the ledger) and
falls back to the run-ledger directory, so history rides wherever the
ledger already lives and the hermetic test fixture covers both.  Every
module-level helper is fail-soft: a read-only cache directory can never
take a run down.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .events import iter_jsonl
from .ledger import _OFF_VALUES, default_ledger_dir, ledger_enabled

HISTORY_SCHEMA = "repro.obs.history"
HISTORY_SCHEMA_VERSION = 1

HISTORY_INDEX_SCHEMA = "repro.obs.history.index"
HISTORY_INDEX_SCHEMA_VERSION = 1

#: series key used inside the index document (tab never appears in the
#: benchmark/machine/metric names we stamp).
_KEY_SEP = "\t"

#: (benchmark, machine, metric)
SeriesKey = Tuple[str, str, str]


def history_enabled() -> bool:
    """False when ``$REPRO_HISTORY`` (or, absent that, ``$REPRO_LEDGER``)
    explicitly turns history off."""
    value = os.environ.get("REPRO_HISTORY")
    if value is not None:
        return value.strip().lower() not in _OFF_VALUES and value.strip() != ""
    return ledger_enabled()


def default_history_dir() -> Path:
    """``$REPRO_HISTORY`` > the run-ledger directory."""
    env = os.environ.get("REPRO_HISTORY")
    if env and env.strip().lower() not in _OFF_VALUES:
        return Path(env).expanduser()
    return default_ledger_dir()


class RunHistory:
    """Append-only JSONL metric history with a derived atomic index."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None \
            else default_history_dir()
        self.points_path = self.directory / "history.jsonl"
        self.index_path = self.directory / "history_index.json"

    # -- writing ------------------------------------------------------------

    def append(self, points: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
        """Append points (each needs benchmark/machine/metric/value).

        Stamps ``schema``/``v`` and -- when the caller didn't -- ``ts``,
        skips points whose value is not a finite number, and folds every
        written point into the index.  Returns the rows as written.
        """
        rows: List[Dict[str, object]] = []
        now = time.time()
        for point in points:
            value = point.get("value")
            if (isinstance(value, bool) or not isinstance(value, (int, float))
                    or not math.isfinite(value)):
                continue
            row: Dict[str, object] = {
                "schema": HISTORY_SCHEMA,
                "v": HISTORY_SCHEMA_VERSION,
                "ts": point.get("ts", now),
                "benchmark": str(point.get("benchmark") or "-"),
                "machine": str(point.get("machine") or "-"),
                "metric": str(point.get("metric") or "-"),
                "value": float(value),
            }
            for key in ("source", "trace_id", "worker"):
                if point.get(key) is not None:
                    row[key] = point[key]
            rows.append(row)
        if not rows:
            return rows
        self.directory.mkdir(parents=True, exist_ok=True)
        # Load (possibly rebuilding) the index BEFORE appending, so a
        # rebuild replaying history.jsonl cannot double-count new points.
        index = self._load_index()
        with open(self.points_path, "a", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, default=repr))
                fh.write("\n")
        for row in rows:
            self._fold_point(index, row)
        self._write_index(index)
        from ..telemetry import get_registry
        registry = get_registry()
        if registry.enabled:
            for row in rows:
                registry.count("history.points",
                               labels={"source": row.get("source", "-")})
        return rows

    # -- index maintenance --------------------------------------------------

    def _blank_index(self) -> Dict[str, object]:
        return {
            "schema": HISTORY_INDEX_SCHEMA,
            "v": HISTORY_INDEX_SCHEMA_VERSION,
            "points": 0,
            "updated": 0.0,
            "series": {},
        }

    def _load_index(self) -> Dict[str, object]:
        """The index, rebuilt from ``history.jsonl`` if missing/corrupt."""
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                index = json.load(fh)
            if (isinstance(index, dict)
                    and index.get("schema") == HISTORY_INDEX_SCHEMA
                    and isinstance(index.get("series"), dict)):
                return index
            raise ValueError("unrecognized history index document")
        except FileNotFoundError:
            if self.points_path.exists():
                return self.rebuild_index()
            return self._blank_index()
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"run-history index {self.index_path} is corrupt ({exc}); "
                "rebuilding from history.jsonl",
                RuntimeWarning, stacklevel=3,
            )
            from ..telemetry import get_registry
            registry = get_registry()
            if registry.enabled:
                registry.count("history.index_rebuilds", 1)
            return self.rebuild_index()

    def _fold_point(self, index: Dict[str, object],
                    row: Dict[str, object]) -> None:
        index["points"] = int(index.get("points", 0)) + 1
        ts = float(row.get("ts", 0.0))
        index["updated"] = max(float(index.get("updated", 0.0)), ts)
        key = _KEY_SEP.join((str(row.get("benchmark", "-")),
                             str(row.get("machine", "-")),
                             str(row.get("metric", "-"))))
        series: Dict[str, Dict[str, object]] = index["series"]
        entry = series.get(key)
        if entry is None:
            entry = series[key] = {
                "points": 0,
                "first_ts": ts,
                "last_ts": ts,
                "last_value": row.get("value"),
            }
        entry["points"] = int(entry["points"]) + 1
        entry["first_ts"] = min(float(entry["first_ts"]), ts)
        if ts >= float(entry["last_ts"]):
            entry["last_ts"] = ts
            entry["last_value"] = row.get("value")

    def _write_index(self, index: Dict[str, object]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix="history_index.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(index, fh, indent=2, sort_keys=True, default=repr)
                fh.write("\n")
            os.replace(tmp, self.index_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def rebuild_index(self) -> Dict[str, object]:
        """Regenerate the index by replaying every point of the log."""
        index = self._blank_index()
        for row in self.iter_points():
            self._fold_point(index, row)
        self._write_index(index)
        return index

    # -- reading ------------------------------------------------------------

    def iter_points(self):
        """Every decodable point of ``history.jsonl``, oldest first."""
        try:
            with open(self.points_path, encoding="utf-8") as fh:
                for record, _bad in iter_jsonl(fh):
                    if record is not None:
                        yield record
        except OSError:
            return

    def series(
        self,
        benchmark: Optional[str] = None,
        machine: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> Dict[SeriesKey, List[Tuple[float, float]]]:
        """Grouped ``{(benchmark, machine, metric): [(ts, value), ...]}``.

        Points keep log order (appends are chronological); the optional
        filters match exactly.
        """
        out: Dict[SeriesKey, List[Tuple[float, float]]] = {}
        for row in self.iter_points():
            key = (str(row.get("benchmark", "-")),
                   str(row.get("machine", "-")),
                   str(row.get("metric", "-")))
            if benchmark is not None and key[0] != benchmark:
                continue
            if machine is not None and key[1] != machine:
                continue
            if metric is not None and key[2] != metric:
                continue
            value = row.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.setdefault(key, []).append(
                    (float(row.get("ts", 0.0)), float(value)))
        return out

    def index(self) -> Dict[str, object]:
        """The (possibly rebuilt) per-series index summary document."""
        return self._load_index()


def get_history(directory: Optional[os.PathLike] = None) -> Optional[RunHistory]:
    """A :class:`RunHistory`, or None when the env disables it."""
    if directory is None and not history_enabled():
        return None
    return RunHistory(directory)


def record_points(points: Iterable[Dict[str, object]],
                  directory: Optional[os.PathLike] = None) -> int:
    """Fail-soft append: never raises, returns the number of points written."""
    history = get_history(directory)
    if history is None:
        return 0
    try:
        return len(history.append(points))
    except (OSError, ValueError):
        return 0


# ---------------------------------------------------------------------------
# Distillers: ledger rows and RunReport documents -> metric points
# ---------------------------------------------------------------------------

#: numeric ledger-row fields worth a time series, with their metric names.
_ROW_METRICS: Tuple[Tuple[str, str], ...] = (
    ("makespan_s", "makespan_s"),
    ("compile_s", "compile_s"),
    ("peak_live_bytes", "peak_live_bytes"),
)


def _finite(value) -> Optional[float]:
    if (isinstance(value, bool) or not isinstance(value, (int, float))
            or not math.isfinite(value)):
        return None
    return float(value)


def points_from_row(kind: str, row: Dict[str, object]) -> List[Dict[str, object]]:
    """Distill one ledger row (or its fields) into history points."""
    out: List[Dict[str, object]] = []
    base = {
        "benchmark": row.get("benchmark"),
        "machine": row.get("machine"),
        "source": kind,
    }
    if row.get("trace_id"):
        base["trace_id"] = row["trace_id"]
    for field, metric in _ROW_METRICS:
        value = _finite(row.get(field))
        if value is not None:
            out.append({**base, "metric": metric, "value": value})
    return out


def _counter_sum(counters: Dict[str, object], prefix: str) -> Optional[float]:
    """Sum every ``name{labels}`` snapshot series starting with prefix."""
    total, seen = 0.0, False
    for key, value in counters.items():
        if key == prefix or key.startswith(prefix + "{"):
            fv = _finite(value)
            if fv is not None:
                total += fv
                seen = True
    return total if seen else None


def _rate(counters: Dict[str, object], hit_prefix: str,
          miss_prefix: str) -> Optional[float]:
    hits = _counter_sum(counters, hit_prefix)
    misses = _counter_sum(counters, miss_prefix)
    if hits is None and misses is None:
        return None
    hits, misses = hits or 0.0, misses or 0.0
    total = hits + misses
    return hits / total if total > 0 else None


def points_from_report(doc: Dict[str, object],
                       source: str = "report") -> List[Dict[str, object]]:
    """Distill one RunReport document into history points.

    Pulls every longitudinal headline the stack already measures: the
    simulated makespan and attained throughput, the attribution taxonomy
    seconds, the plan-replay microbenchmark speedup, the static memory
    high-water mark, cache and zero-copy hit rates, and the per-benchmark
    tables of a BENCH suite report (each as its own ``benchmark`` series).
    """
    points: List[Dict[str, object]] = []
    bench = doc.get("benchmark")
    machine = doc.get("machine")
    notes = doc.get("notes") or {}
    trace_id = notes.get("trace_id")

    def add(metric: str, value, benchmark=None) -> None:
        fv = _finite(value)
        if fv is None:
            return
        point = {"benchmark": benchmark or bench, "machine": machine,
                 "metric": metric, "value": fv, "source": source}
        if trace_id:
            point["trace_id"] = trace_id
        points.append(point)

    sim = doc.get("simulator") or {}
    add("makespan_s", sim.get("total_time_s"))
    add("attained_ops", sim.get("attained_ops"))
    attribution = doc.get("attribution") or {}
    for cat, seconds in sorted((attribution.get("totals_s") or {}).items()):
        add(f"attr_{cat}_s", seconds)

    counters = doc.get("counters") or {}
    add("peak_live_bytes", _counter_sum(counters, "plan.peak_live_bytes"))
    add("batch_fallbacks", _counter_sum(counters, "ops.batch_fallbacks"))
    add("sig_cache_hit_rate", _rate(counters, "sim.sig_cache.hits",
                                    "sim.sig_cache.misses"))
    zero = (_counter_sum(counters, "store.zero_copy_reads") or 0.0) + \
        (_counter_sum(counters, "store.static_zero_copy") or 0.0)
    copied = _counter_sum(counters, "store.copied_reads")
    if zero or copied is not None:
        reads = zero + (copied or 0.0)
        if reads > 0:
            add("zero_copy_rate", zero / reads)

    micro = notes.get("plan_microbench") or {}
    if isinstance(micro, dict):
        micro_bench = micro.get("benchmark") or bench
        add("replay_speedup", micro.get("speedup"), benchmark=micro_bench)
        add("warm_replay_s", micro.get("warm_replay_s"),
            benchmark=micro_bench)
        add("batched_speedup", micro.get("batched_speedup"),
            benchmark=micro_bench)
        add("warm_batched_s", micro.get("warm_batched_s"),
            benchmark=micro_bench)

    benchmarks = notes.get("benchmarks") or {}
    if isinstance(benchmarks, dict):
        for name, table in sorted(benchmarks.items()):
            if not isinstance(table, dict):
                continue
            add("makespan_s", table.get("total_time_s"), benchmark=name)
            add("attained_ops", table.get("attained_ops"), benchmark=name)
            add("peak_fraction", table.get("peak_fraction"), benchmark=name)
    return points


def record_row_history(kind: str, row: Dict[str, object],
                       directory: Optional[os.PathLike] = None) -> int:
    """Fail-soft: distill one ledger row into history points and append."""
    try:
        return record_points(points_from_row(kind, row), directory=directory)
    except Exception:
        return 0


def record_report_history(report, source: str = "report",
                          directory: Optional[os.PathLike] = None) -> int:
    """Fail-soft: distill one RunReport (object or dict) into history."""
    try:
        doc = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        return record_points(points_from_report(doc, source=source),
                             directory=directory)
    except Exception:
        return 0
