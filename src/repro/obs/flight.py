"""Flight recorder: keep the recent past, dump it when a run dies.

A :class:`FlightRecorder` rides along with an in-flight run holding

* the structured event log's bounded ring of recent events,
* periodic counter-registry snapshots (``mark()``) with deltas between
  consecutive marks -- "what moved since the last checkpoint", and
* references to the tracer and any partial RunReport context.

On an uncaught exception (via :func:`crash_scope`) or an explicit
:meth:`FlightRecorder.dump` it writes a **crash bundle**: one directory of
plain JSON/JSONL artifacts an engineer (or ``repro events tail``) can
triage offline without the dying process.  Bundle layout::

    <dir>/bundle-<utcstamp>-<reason>/
        MANIFEST.json     reason, exception, artifact inventory, schema
        events.jsonl      the retained event window (oldest first)
        counters.json     full counter snapshot at dump time
        marks.json        checkpoint snapshots + deltas between marks
        spans.jsonl       completed tracer spans (ring window)
        config.json       run configuration (benchmark, machine, argv...)
        report.json       partial RunReport (schema v3, notes.partial=true)
        profile.json      in-flight sampling profile (when a profiler is live)
        traceback.txt     formatted traceback (crash dumps only)

Every writer is fail-soft: a bundle that cannot be written must never mask
the original exception.
"""

from __future__ import annotations

import json
import sys
import time
import traceback
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional

from .. import telemetry
from .events import EventLog, get_event_log

BUNDLE_SCHEMA = "repro.obs.crash_bundle"
BUNDLE_SCHEMA_VERSION = 1

#: counter-snapshot checkpoints kept (ring, oldest evicted).
DEFAULT_MARKS = 16


def _numeric_delta(prev: Dict[str, object], cur: Dict[str, object]) -> Dict[str, float]:
    """Per-series numeric change between two registry snapshots."""
    out: Dict[str, float] = {}
    for key, value in cur.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        before = prev.get(key, 0)
        if isinstance(before, bool) or not isinstance(before, (int, float)):
            before = 0
        if value != before:
            out[key] = float(value) - float(before)
    return out


class FlightRecorder:
    """Bounded recent-history recorder + crash-bundle writer."""

    def __init__(
        self,
        event_log: Optional[EventLog] = None,
        registry=None,
        tracer=None,
        max_marks: int = DEFAULT_MARKS,
    ):
        self.event_log = event_log if event_log is not None else get_event_log()
        self.registry = registry if registry is not None else telemetry.get_registry()
        self.tracer = tracer if tracer is not None else telemetry.get_tracer()
        self.max_marks = max_marks
        self._marks: List[Dict[str, object]] = []
        self.config: Dict[str, object] = {}
        self.report_context: Dict[str, object] = {}

    # -- checkpoints --------------------------------------------------------

    def mark(self, label: str = "") -> Dict[str, object]:
        """Checkpoint the counter registry; records the delta since the
        previous mark so the bundle shows what moved per phase."""
        snapshot = self.registry.snapshot()
        prev = self._marks[-1]["counters"] if self._marks else {}
        mark = {
            "ts": time.time(),
            "label": label,
            "counters": snapshot,
            "delta": _numeric_delta(prev, snapshot),
        }
        self._marks.append(mark)
        if len(self._marks) > self.max_marks:
            self._marks.pop(0)
        return mark

    @property
    def marks(self) -> List[Dict[str, object]]:
        return list(self._marks)

    # -- bundle writing -----------------------------------------------------

    def dump(
        self,
        directory: str,
        reason: str = "manual",
        exc: Optional[BaseException] = None,
        config: Optional[Dict[str, object]] = None,
        report=None,
    ) -> Path:
        """Write one crash bundle under ``directory``; returns its path."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)[:40]
        bundle = Path(directory) / f"bundle-{stamp}-{slug or 'manual'}"
        n = 0
        while bundle.exists():  # same-second dumps get distinct directories
            n += 1
            bundle = bundle.with_name(f"{bundle.name.rsplit('.', 1)[0]}.{n}")
        bundle.mkdir(parents=True)

        artifacts: Dict[str, str] = {}

        def _write_json(name: str, obj) -> None:
            path = bundle / name
            with open(path, "w", encoding="utf-8") as f:
                json.dump(obj, f, indent=2, default=repr)
                f.write("\n")
            artifacts[name] = path.name

        events = self.event_log.events()
        with open(bundle / "events.jsonl", "w", encoding="utf-8") as f:
            for record in events:
                f.write(json.dumps(record, default=repr))
                f.write("\n")
        artifacts["events.jsonl"] = "events.jsonl"

        _write_json("counters.json", self.registry.snapshot())
        _write_json("marks.json", self._marks)

        spans = self.tracer.spans()
        with open(bundle / "spans.jsonl", "w", encoding="utf-8") as f:
            for span in spans:
                f.write(json.dumps(span.to_json_obj(), default=repr))
                f.write("\n")
        artifacts["spans.jsonl"] = "spans.jsonl"

        merged_config = dict(self.config)
        if config:
            merged_config.update(config)
        _write_json("config.json", merged_config)

        if report is None:
            report = self._partial_report(reason)
        if report is not None:
            doc = report.to_dict() if hasattr(report, "to_dict") else dict(report)
            _write_json("report.json", doc)

        # In-flight sampling profile, if a profiler is live: a crash mid-run
        # should not lose the samples explaining where the run was stuck.
        try:
            from .prof import get_profiler
            profiler = get_profiler()
            if profiler is not None:
                _write_json("profile.json", profiler.to_doc())
        except Exception:  # noqa: BLE001 - bundle writing is fail-soft
            pass

        tb = None
        if exc is not None:
            tb = "".join(traceback.format_exception(type(exc), exc,
                                                    exc.__traceback__))
            with open(bundle / "traceback.txt", "w", encoding="utf-8") as f:
                f.write(tb)
            artifacts["traceback.txt"] = "traceback.txt"

        _write_json("MANIFEST.json", {
            "schema": BUNDLE_SCHEMA,
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "reason": reason,
            "exception": (f"{type(exc).__name__}: {exc}" if exc is not None
                          else None),
            "events": {
                "count": len(events),
                "dropped": self.event_log.dropped,
                "total": self.event_log.total,
            },
            "spans": len(spans),
            "marks": len(self._marks),
            "artifacts": sorted(artifacts),
        })
        return bundle

    def _partial_report(self, reason: str):
        """Best-effort partial RunReport for the bundle (never raises)."""
        try:
            return telemetry.build_run_report(
                benchmark=str(self.report_context.get("benchmark", "unknown")),
                machine=str(self.report_context.get("machine", "unknown")),
                registry=self.registry,
                tracer=self.tracer,
                event_log=self.event_log,
                notes={"partial": True, "reason": reason,
                       **{k: v for k, v in self.report_context.items()
                          if k not in ("benchmark", "machine")}},
            )
        except Exception:  # noqa: BLE001 - bundle writing is fail-soft
            return None


@contextmanager
def crash_scope(
    directory: str,
    reason: str = "crash",
    recorder: Optional[FlightRecorder] = None,
    config: Optional[Dict[str, object]] = None,
    stream=None,
):
    """Run a block under flight-recorder protection.

    Yields the (possibly fresh) :class:`FlightRecorder`.  If the block
    raises, a crash bundle is dumped under ``directory``, a one-line notice
    goes to ``stream`` (default stderr), and the exception propagates --
    observability must never swallow the failure it is documenting.
    """
    rec = recorder if recorder is not None else FlightRecorder()
    if config:
        rec.config.update(config)
    try:
        yield rec
    except BaseException as err:  # noqa: BLE001 - re-raised below
        if isinstance(err, (KeyboardInterrupt, SystemExit)):
            raise
        try:
            bundle = rec.dump(directory, reason=reason, exc=err, config=config)
            print(f"[obs] crash bundle written -> {bundle}",
                  file=stream or sys.stderr)
            # The run ledger remembers the crash (with the bundle path) so
            # `repro trace show` surfaces failures next to successes.
            from .ledger import record_run
            record_run("crash", status="crash", reason=reason,
                       crash_bundle=str(bundle),
                       exception=f"{type(err).__name__}: {err}")
        except Exception as dump_err:  # noqa: BLE001 - never mask the crash
            print(f"[obs] crash bundle could not be written: {dump_err}",
                  file=stream or sys.stderr)
        raise


def read_bundle_manifest(bundle_dir: str) -> Dict[str, object]:
    """Load and lightly validate a bundle's MANIFEST.json."""
    path = Path(bundle_dir) / "MANIFEST.json"
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(f"{path}: not a crash bundle manifest "
                         f"(schema {doc.get('schema')!r})")
    return doc
