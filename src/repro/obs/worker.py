"""Worker telemetry shipping: pool children report back to the parent.

``run_sweep(workers=N)`` fans sweep cells across a ``ProcessPoolExecutor``
-- and, before this module, every span, counter and event produced in a
child process died with it.  The fix is a compact, picklable
:class:`WorkerTelemetry` bundle that each cell returns alongside its
records:

* **counter/gauge deltas** rather than absolutes -- pool children are
  forked, so they inherit the parent registry's accumulated values and
  only the cell's own increments belong to the cell;
* **span rollups** (per-name count/total_s deltas) instead of raw spans,
  keeping the bundle a few KiB no matter how deep the fractal recursion;
* an **event-ring tail** (the newest records the cell emitted) for
  ``repro trace show``;
* the **plan-cache hits/misses** and **peak_live_bytes** headline
  numbers the sweep analyses care about.

In the child, :func:`worker_capture` snapshots the inherited telemetry,
re-enters the parent's trace as a ``worker=<n>`` child span (so every
event the cell emits carries the parent ``trace_id``), and computes the
deltas on exit.  In the parent, :func:`merge_worker_telemetry` folds a
bundle back into the live registries with ``worker=<n>`` labels -- which
makes the merged series visible through the existing OpenMetrics
``/metrics`` endpoint with no server changes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .trace import TraceContext, trace_scope

#: cap on the event-ring tail shipped per cell (keeps bundles small).
EVENT_TAIL_LIMIT = 100

#: flat picklable series: (dotted name, ((k, v), ...) labels, value).
SeriesDelta = Tuple[str, Tuple[Tuple[str, str], ...], float]


@dataclass
class WorkerTelemetry:
    """One pool child's telemetry, as plain picklable data."""

    worker: int
    trace_id: str
    span_id: str
    wall_s: float = 0.0
    counters: List[SeriesDelta] = field(default_factory=list)
    gauges: List[SeriesDelta] = field(default_factory=list)
    #: per-span-name rollup deltas: {name: {"cat", "count", "total_s", "max_s"}}
    spans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: newest event records the cell emitted (<= EVENT_TAIL_LIMIT).
    events: List[Dict[str, object]] = field(default_factory=list)
    events_total: int = 0
    #: headline plan-cache traffic: {"hits_memory", "hits_disk", "misses"}.
    plan_cache: Dict[str, int] = field(default_factory=dict)
    peak_live_bytes: int = 0
    #: the cell's sampling profile (a ``repro.obs.profile`` doc), shipped
    #: only when the parent had a profiler live at submit time.
    profile: Optional[Dict[str, object]] = None


def build_wire(ctx: TraceContext, worker: int) -> Dict[str, object]:
    """The payload the parent ships to one pool child.

    Carries the parent trace plus the parent's enable flags, so a child
    arms exactly the subsystems the parent had live at submit time.
    """
    from ..telemetry import get_registry, get_tracer
    from .events import get_event_log
    from .prof import get_profiler
    profiler = get_profiler()
    return {
        "trace": ctx.to_wire(),
        "worker": int(worker),
        "counters": get_registry().enabled,
        "tracing": get_tracer().enabled,
        "events": get_event_log().enabled,
        # Parent profiling? Children sample themselves at the same rate and
        # ship the profile back for merge_worker_telemetry to ingest.
        "profile_hz": profiler.hz if profiler is not None else None,
    }


def _counter_state(registry) -> Dict[Tuple[str, Tuple], float]:
    return {(c.name, c.labels): c.value for c in registry._counters.values()}


def _gauge_state(registry) -> Dict[Tuple[str, Tuple], float]:
    return {(g.name, g.labels): g.value for g in registry._gauges.values()}


def _series_deltas(before: Dict, after: Dict,
                   gauges: bool = False) -> List[SeriesDelta]:
    out: List[SeriesDelta] = []
    for key, value in after.items():
        if gauges:
            # Gauges are last-write-wins: ship the final value whenever the
            # cell wrote it (changed or newly created).
            if key not in before or before[key] != value:
                out.append((key[0], key[1], value))
        else:
            delta = value - before.get(key, 0)
            if delta:
                out.append((key[0], key[1], delta))
    out.sort(key=lambda item: (item[0], item[1]))
    return out


def _rollup_deltas(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict:
    out: Dict[str, Dict[str, object]] = {}
    for name, agg in after.items():
        prev = before.get(name)
        count_d = int(agg["count"]) - (int(prev["count"]) if prev else 0)
        if count_d <= 0:
            continue
        total_d = float(agg["total_s"]) - (float(prev["total_s"]) if prev else 0.0)
        self_d = (float(agg.get("self_total_s", 0.0))
                  - (float(prev.get("self_total_s", 0.0)) if prev else 0.0))
        out[name] = {
            "cat": agg.get("cat", ""),
            "count": count_d,
            "total_s": total_d,
            "self_total_s": self_d,
            "max_s": float(agg.get("max_s", 0.0)),
        }
    return out


def _plan_cache_headline(counters: List[SeriesDelta]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for name, labels, value in counters:
        if name == "plan.compile_hits":
            tier = dict(labels).get("tier", "memory")
            out[f"hits_{tier}"] = out.get(f"hits_{tier}", 0) + int(value)
        elif name == "plan.compile_misses":
            out["misses"] = out.get("misses", 0) + int(value)
    return out


@contextmanager
def worker_capture(wire: Dict[str, object]):
    """Child-side scope: re-attach telemetry under the parent's trace.

    Arms the registry/tracer/event log per the parent's enable flags,
    installs the parent trace as a ``worker=<n>`` child context, and --
    after the body runs -- computes the deltas into the yielded holder's
    ``telemetry`` attribute (a :class:`WorkerTelemetry`).
    """
    from ..telemetry import get_registry, get_tracer
    from .events import get_event_log

    worker = int(wire.get("worker", 0))
    ctx = TraceContext.from_wire(wire.get("trace") or {}).child(worker=worker)

    registry = get_registry()
    tracer = get_tracer()
    log = get_event_log()
    if wire.get("counters"):
        registry.enable()
    if wire.get("tracing"):
        tracer.enable()
    if wire.get("events"):
        log.enable()

    counters0 = _counter_state(registry)
    gauges0 = _gauge_state(registry)
    rollups0 = tracer.rollups() if tracer.enabled else {}
    seq0 = log.total

    prof_child = None
    hz = wire.get("profile_hz")
    if hz:
        from .prof import SamplingProfiler, get_profiler
        if get_profiler() is None:  # a pool child never has one, but be safe
            prof_child = SamplingProfiler(hz=float(hz), tracer=tracer)
            prof_child.start()

    class _Holder:
        telemetry: Optional[WorkerTelemetry] = None

    holder = _Holder()
    t0 = time.perf_counter()
    try:
        with trace_scope(ctx):
            yield holder
    finally:
        if prof_child is not None and prof_child.running:
            prof_child.stop()
    wall = time.perf_counter() - t0

    profile_doc = None
    if prof_child is not None:
        profile_doc = prof_child.to_doc()
        # Stamp the cell's identity explicitly: to_doc reads the ambient
        # trace, but the worker scope has already exited by now.
        profile_doc["worker"] = worker
        profile_doc["trace_id"] = ctx.trace_id
        profile_doc["span_id"] = ctx.span_id

    counters = _series_deltas(counters0, _counter_state(registry))
    gauges = _series_deltas(gauges0, _gauge_state(registry), gauges=True)
    tail = [rec for rec in log.events() if int(rec.get("seq", 0)) > seq0]
    peak = registry.value("plan.peak_live_bytes")
    holder.telemetry = WorkerTelemetry(
        worker=worker,
        trace_id=ctx.trace_id,
        span_id=ctx.span_id,
        wall_s=wall,
        counters=counters,
        gauges=gauges,
        spans=_rollup_deltas(rollups0,
                             tracer.rollups() if tracer.enabled else {}),
        events=tail[-EVENT_TAIL_LIMIT:],
        events_total=log.total - seq0,
        plan_cache=_plan_cache_headline(counters),
        peak_live_bytes=int(peak) if isinstance(peak, (int, float)) else 0,
        profile=profile_doc,
    )


def ledger_fields(wt: WorkerTelemetry, max_series: int = 64,
                  max_events: int = 20) -> Dict[str, object]:
    """A bounded distillation of one bundle for its run-ledger row.

    Keeps the row a few KiB: the full span rollups (already aggregated),
    the first ``max_series`` counter series rendered as flat
    ``name{k=v}`` keys, and the newest ``max_events`` events -- enough
    for ``repro trace show`` to join spans+events+counters per worker
    without re-running anything.
    """
    from ..telemetry.counters import format_series
    fields: Dict[str, object] = {
        "worker": wt.worker,
        "makespan_s": wt.wall_s,
    }
    if wt.spans:
        fields["spans"] = wt.spans
    if wt.counters:
        fields["counters"] = {
            format_series(name, labels): value
            for name, labels, value in wt.counters[:max_series]
        }
        if len(wt.counters) > max_series:
            fields["counters_truncated"] = len(wt.counters) - max_series
    if wt.events:
        fields["events"] = wt.events[-max_events:]
    if wt.events_total:
        fields["events_total"] = wt.events_total
    if wt.plan_cache:
        fields["cache"] = wt.plan_cache
    if wt.peak_live_bytes:
        fields["peak_live_bytes"] = wt.peak_live_bytes
    if wt.profile:
        from .prof import profile_summary
        fields["profile"] = profile_summary(wt.profile)
    return fields


def merge_worker_telemetry(wt: WorkerTelemetry, registry=None,
                           event_log=None) -> None:
    """Parent-side merge: fold one bundle into the live registries.

    Every merged series gains a ``worker=<n>`` label, so the parent's own
    counters stay untouched and ``/metrics`` exposes per-worker series
    (``repro_sim_busy_seconds_total{level="0",worker="1"}``) alongside
    them.  Shipped events are re-ingested into the parent's event log
    (stamped ``worker``), landing in the ring, the JSONL sink, and any
    listeners exactly like locally emitted ones.
    """
    if registry is None:
        from ..telemetry import get_registry
        registry = get_registry()
    if event_log is None:
        from .events import get_event_log
        event_log = get_event_log()

    tag = str(wt.worker)
    if registry.enabled:
        for name, labels, value in wt.counters:
            registry.count(name, value, {**dict(labels), "worker": tag})
        for name, labels, value in wt.gauges:
            registry.set_gauge(name, value, {**dict(labels), "worker": tag})
        for name, agg in wt.spans.items():
            registry.count("worker.spans", int(agg["count"]),
                           {"name": name, "worker": tag})
            registry.count("worker.span_seconds", float(agg["total_s"]),
                           {"name": name, "worker": tag})
        registry.count("worker.wall_seconds", wt.wall_s, {"worker": tag})
        if wt.events_total:
            registry.count("worker.events", wt.events_total, {"worker": tag})
        if wt.profile:
            registry.count("prof.samples", int(wt.profile.get("samples", 0)),
                           {"worker": tag})
    if event_log.enabled:
        for record in wt.events:
            event_log.ingest(record, worker=wt.worker)
    if wt.profile:
        from .prof import get_profiler
        parent_prof = get_profiler()
        if parent_prof is not None:
            parent_prof.ingest(wt.profile, worker=wt.worker)
