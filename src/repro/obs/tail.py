"""Offline event-log triage: filter and pretty-print JSONL event streams.

Backs the ``repro events tail`` CLI.  Input is either an ``events.jsonl``
file (written by ``--events`` on profiling runs or by the flight
recorder) or a crash-bundle directory, in which case the bundle's
``events.jsonl`` is read.  Corrupt lines -- expected in bundles written
mid-crash -- are counted, not fatal.
"""

from __future__ import annotations

import re
import time
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Pattern, Tuple, Union

from .events import SEVERITY_RANK, iter_jsonl


def resolve_events_path(target: str) -> Path:
    """Accept an events.jsonl file or a crash-bundle directory."""
    path = Path(target)
    if path.is_dir():
        candidate = path / "events.jsonl"
        if not candidate.exists():
            raise FileNotFoundError(
                f"{target}: directory holds no events.jsonl "
                f"(not a crash bundle?)")
        return candidate
    return path


def load_events(target: str) -> Tuple[List[Dict[str, object]], int]:
    """Read events from a file or bundle dir; returns (events, bad_lines)."""
    path = resolve_events_path(target)
    events: List[Dict[str, object]] = []
    bad = 0
    with open(path, encoding="utf-8") as f:
        for record, corrupt in iter_jsonl(f):
            if record is None:
                bad += 1
            else:
                events.append(record)
    return events, bad


def grep_blob(record: Dict[str, object]) -> str:
    """The text ``--grep`` matches against for one event.

    Mirrors what :func:`format_event` renders: subsystem, event name,
    the free-form ``k=v`` fields, and the propagated context values --
    but not the reserved envelope keys (schema/seq/ts/severity), so a
    pattern like ``3`` doesn't match every third sequence number.
    """
    parts = [str(record.get("subsystem", "")), str(record.get("event", ""))]
    parts += [f"{k}={record[k]}" for k in record if k not in _RESERVED]
    ctx = record.get("ctx")
    if isinstance(ctx, dict):
        parts += [f"{k}={v}" for k, v in ctx.items()]
    return " ".join(parts)


def parse_since(text: str) -> float:
    """``--since`` value -> epoch seconds.

    Accepts a raw epoch number (``1722950000`` / ``1722950000.5``) or an
    ISO-8601 timestamp (``2026-08-08T12:00:00``, with or without a
    timezone offset; naive stamps are taken in local time, matching how
    :func:`format_event` displays them).  Raises :class:`ValueError` on
    anything else -- the CLI maps that to exit 2.
    """
    raw = text.strip()
    try:
        return float(raw)
    except ValueError:
        pass
    from datetime import datetime
    try:
        parsed = datetime.fromisoformat(raw)
    except ValueError:
        raise ValueError(
            f"--since {text!r}: expected an epoch number or ISO-8601 "
            "timestamp (e.g. 2026-08-08T12:00:00)")
    if parsed.tzinfo is None:
        parsed = parsed.astimezone()
    return parsed.timestamp()


def filter_events(
    events: Iterable[Dict[str, object]],
    subsystem: Optional[str] = None,
    min_severity: Optional[str] = None,
    event_glob: Optional[str] = None,
    last: Optional[int] = None,
    pattern: Optional[Union[str, Pattern[str]]] = None,
    since: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Apply tail filters (all optional) preserving order.

    ``pattern`` is an (uncompiled or precompiled) regex searched against
    :func:`grep_blob` -- the ``--grep`` filter.  ``since`` is an epoch
    lower bound on the event ``ts`` (events without a numeric timestamp
    are dropped when it is set) -- the ``--since`` filter for triaging
    alert windows.  Both compose with the other filters and are applied
    before ``last`` so "the newest N matching events" means what it says.
    """
    out = list(events)
    if subsystem:
        out = [e for e in out if e.get("subsystem") == subsystem]
    if min_severity:
        floor = SEVERITY_RANK.get(min_severity, 0)
        out = [e for e in out
               if SEVERITY_RANK.get(str(e.get("severity")), 1) >= floor]
    if event_glob:
        out = [e for e in out if fnmatch(str(e.get("event", "")), event_glob)]
    if since is not None:
        out = [e for e in out
               if isinstance(e.get("ts"), (int, float))
               and not isinstance(e.get("ts"), bool)
               and float(e["ts"]) >= since]
    if pattern is not None:
        rx = re.compile(pattern) if isinstance(pattern, str) else pattern
        out = [e for e in out if rx.search(grep_blob(e))]
    if last is not None and last >= 0:
        out = out[-last:] if last else []
    return out


def follow_events(
    target: str,
    poll_interval: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
    start_at_end: bool = False,
    _sleep: Callable[[float], None] = time.sleep,
) -> Iterable[Dict[str, object]]:
    """Yield events from ``target`` as they are appended (``tail -f``).

    Polls the file every ``poll_interval`` seconds, yielding each decoded
    record exactly once.  Robust to the writer's failure modes:

    * a **torn final line** (the sink flushes whole lines, but a reader
      can still race a partial write) is buffered until its newline lands;
    * **truncation or rotation** (the sink's ``.1`` rollover replaces the
      file) resets the read offset to the new file's start;
    * a **missing file** is simply waited on -- the run may not have
      attached its sink yet.

    ``stop`` is an optional callable checked once per poll; returning
    True ends the stream (the CLI maps Ctrl-C onto the same exit).  With
    ``start_at_end`` the existing contents are skipped, mirroring
    ``tail -n0 -f``.
    """
    path = resolve_events_path(target) if Path(target).is_dir() else Path(target)
    pos = 0
    if start_at_end:
        try:
            pos = path.stat().st_size
        except OSError:
            pos = 0
    pending = ""
    while True:
        if stop is not None and stop():
            return
        try:
            size = path.stat().st_size
        except OSError:
            size = None
        if size is not None:
            if size < pos:  # truncated or rotated underneath us
                pos = 0
                pending = ""
            if size > pos:
                with open(path, encoding="utf-8") as f:
                    f.seek(pos)
                    chunk = f.read()
                    pos = f.tell()
                pending += chunk
                *lines, pending = pending.split("\n")
                for record, _bad in iter_jsonl(lines):
                    if record is not None:
                        yield record
                continue  # drain before sleeping again
        _sleep(poll_interval)


_RESERVED = ("schema", "v", "seq", "ts", "subsystem", "event", "severity",
             "ctx")


def format_event(record: Dict[str, object], base_ts: Optional[float] = None) -> str:
    """One human-readable line per event, context included.

    ``+12.345s  [error] executor  instruction.fail  error=boom
    | instruction=3 opcode=MatMul machine=tiny``
    """
    ts = record.get("ts")
    if isinstance(ts, (int, float)) and base_ts is not None:
        stamp = f"+{ts - base_ts:9.3f}s"
    elif isinstance(ts, (int, float)):
        stamp = f"{ts:.3f}"
    else:
        stamp = "?"
    severity = str(record.get("severity", "?"))
    subsystem = str(record.get("subsystem", "?"))
    event = str(record.get("event", "?"))
    fields = " ".join(f"{k}={record[k]!r}" for k in record
                      if k not in _RESERVED)
    ctx = record.get("ctx")
    ctx_str = ""
    if isinstance(ctx, dict) and ctx:
        ctx_str = "  | " + " ".join(f"{k}={v}" for k, v in ctx.items())
    body = f"{stamp}  [{severity:<5s}] {subsystem:<10s} {event}"
    if fields:
        body += "  " + fields
    return body + ctx_str


def format_events(events: List[Dict[str, object]]) -> str:
    """Pretty-print a filtered stream with relative timestamps."""
    base = None
    for record in events:
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            base = ts
            break
    return "\n".join(format_event(e, base_ts=base) for e in events)
