"""The paper's benchmark workloads, compiled to FISA programs.

Seven benchmarks (Table 5): VGG-16 and ResNet-152 CNN inference, K-NN,
K-Means, LVQ and SVM on a synthetic 262,144-sample / 512-dimension /
128-category dataset, and a 32,768-order square MATMUL.  Each workload
exposes a :class:`Workload` with a FISA instruction list plus the tensors
to bind, so the same object drives the functional executor (small scales)
and the timing simulator (paper scales).
"""

from .builder import ProgramBuilder, Workload
from .matmul import matmul_workload, mm_fc_workload
from .profile import cpu_time_shares, op_shares, program_stats
from .mlalgos import kmeans_workload, knn_workload, lvq_workload, svm_workload
from .networks import alexnet, mlp, resnet152, vgg16
from .suite import (
    PAPER_BENCHMARKS,
    PROFILE_BENCHMARKS,
    paper_benchmark,
    profile_benchmark,
    profile_benchmark_names,
    resolve_profile_benchmark,
    small_benchmark,
)

__all__ = [
    "ProgramBuilder",
    "Workload",
    "matmul_workload",
    "mm_fc_workload",
    "knn_workload",
    "kmeans_workload",
    "lvq_workload",
    "svm_workload",
    "alexnet",
    "mlp",
    "resnet152",
    "vgg16",
    "PAPER_BENCHMARKS",
    "PROFILE_BENCHMARKS",
    "paper_benchmark",
    "profile_benchmark",
    "profile_benchmark_names",
    "resolve_profile_benchmark",
    "small_benchmark",
    "cpu_time_shares",
    "op_shares",
    "program_stats",
]
