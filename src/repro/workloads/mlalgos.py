"""Classic machine-learning workloads: K-NN, K-Means, LVQ, SVM (Table 5).

The paper runs these on a randomly generated dataset of 262,144 samples
with 512 dimensions in 128 categories.  The control flow (argmin selection,
convergence checks) runs on the host -- exactly the role the paper assigns
to the programmer "acting as the controller beyond the top level node" --
while all bulk arithmetic is FISA instructions.  Distance computations are
performed against per-category reference vectors, which matches both the
primitive mix of Table 1 (inner-product dominated, with sort/count/eltwise
tails) and the execution-time scale of the Fig-13 timelines.
"""

from __future__ import annotations

from ..core.isa import Opcode
from .builder import ProgramBuilder, Workload


def knn_workload(
    n_samples: int = 262_144,
    dims: int = 512,
    categories: int = 128,
    batch: int = 2048,
) -> Workload:
    """k-Nearest-Neighbour classification (the Fig-11 driving example).

    Per batch: squared distances to the reference vectors, a merge sort of
    the distance block (to locate the k-th smallest), and a count of
    neighbours below the threshold.  Distances constitute >=95% of the work,
    matching the paper's observation.
    """
    b = ProgramBuilder("knn")
    refs = b.input("refs", (categories, dims))
    n_batches = max(1, n_samples // batch)
    select = min(128, batch)  # candidate block handed to the k-selection sort
    for i in range(n_batches):
        x = b.input(f"batch{i}", (batch, dims))
        dist = b.tensor("dist", (batch, categories))
        b.emit(Opcode.EUCLIDIAN1D, (x.region(), refs.region()), (dist.region(),))
        # merge-sort the candidate block to locate the k-th smallest
        # distance (a selection, so only a block of rows at a time)
        flat = b.tensor("sorted", (select * categories,))
        b.emit(Opcode.SORT1D, (dist.region()[0:select, :],), (flat.region(),))
        b.mark_output(flat)  # the host reads the k-th smallest off this block
        cnt = b.tensor("count", (1,))
        b.emit(Opcode.COUNT1D, (dist.region()[0:select, :],), (cnt.region(),))
        b.mark_output(cnt)
    return b.build(n_samples=n_samples, dims=dims, categories=categories, batch=batch)


def kmeans_workload(
    n_samples: int = 262_144,
    dims: int = 512,
    k: int = 128,
    batch: int = 2048,
    iterations: int = 1,
) -> Workload:
    """Lloyd's k-means.  Per iteration and batch: distances to the current
    centroids, element-wise distance normalization, one-hot-weighted sums
    via MatMul for the centroid update, and per-cluster member counts."""
    b = ProgramBuilder("kmeans")
    centroids = b.input("centroids", (k, dims))
    n_batches = max(1, n_samples // batch)
    for it in range(iterations):
        last_sums = None
        for i in range(n_batches):
            x = b.input(f"x{it}_{i}", (batch, dims))
            dist = b.tensor("dist", (batch, k))
            b.emit(Opcode.EUCLIDIAN1D, (x.region(), centroids.region()),
                   (dist.region(),))
            # shift by per-batch minimum (host supplies the min-tile tensor)
            mins = b.input(f"mins{it}_{i}", (batch, k))
            shifted = b.tensor("shift", (batch, k))
            b.emit(Opcode.SUB1D, (dist.region(), mins.region()), (shifted.region(),))
            b.mark_output(shifted)  # the host argmins this for assignments
            # one-hot assignment matrix comes back from the host's argmin
            assign = b.input(f"assign{it}_{i}", (k, batch))
            sums = b.tensor("sums", (k, dims))
            b.emit(Opcode.MATMUL, (assign.region(), x.region()), (sums.region(),))
            counts = b.tensor("cnt", (1,))
            b.emit(Opcode.COUNT1D, (assign.region(),), (counts.region(),))
            b.mark_output(counts)  # per-cluster membership for the re-scale
            b.mark_output(sums)
            last_sums = sums
        # centroid re-scale: sums * (1 / member count), tiled by the host
        inv = b.input(f"inv{it}", (k, dims))
        newc = b.tensor("newc", (k, dims))
        b.emit(Opcode.MUL1D, (last_sums.region(), inv.region()), (newc.region(),))
        b.mark_output(newc)
    return b.build(n_samples=n_samples, dims=dims, k=k,
                   batch=batch, iterations=iterations)


def lvq_workload(
    n_samples: int = 262_144,
    dims: int = 512,
    prototypes: int = 128,
    batch: int = 2048,
    update_passes: int = 10,
    iterations: int = 1,
) -> Workload:
    """Learning vector quantization (LVQ2-style batched updates).

    Per batch: squared distances to every prototype (the inner-product
    bulk), then a chain of element-wise passes applying the winner and
    runner-up updates ``w += lr (x - w)`` / ``w -= lr (x - w)`` against
    host-gathered winner tiles.  Element-wise work is a small share of the
    *operations* (so the workload still clears the Cambricon-F1 ridge
    point, as Fig 15a requires) but dominates *CPU time* in the Table-1
    profile, where ELTW passes run two orders of magnitude below GEMM
    throughput (paper: 59.8% ELTW vs 39.9% IP of CPU time)."""
    b = ProgramBuilder("lvq")
    proto_mat = b.input("protos", (prototypes, dims))
    n_batches = max(1, n_samples // batch)
    eltwise_ops = [Opcode.SUB1D, Opcode.MUL1D, Opcode.ADD1D]
    for it in range(iterations):
        for i in range(n_batches):
            x = b.input(f"x{it}_{i}", (batch, dims))
            dist = b.tensor("dist", (batch, prototypes))
            b.emit(Opcode.EUCLIDIAN1D, (x.region(), proto_mat.region()),
                   (dist.region(),))
            b.mark_output(dist)  # the host picks winner/runner-up from it
            # winner/runner-up tiles and learning rates come from the host
            current = b.input(f"winner{it}_{i}", (batch, dims)).region()
            lr = b.input(f"lr{it}_{i}", (batch, dims)).region()
            for p in range(update_passes):
                nxt = b.tensor("upd", (batch, dims))
                op = eltwise_ops[p % len(eltwise_ops)]
                other = x.region() if p % 2 == 0 else lr
                b.emit(op, (current, other), (nxt.region(),))
                current = nxt.region()
            b.mark_output(current.tensor)
    return b.build(n_samples=n_samples, dims=dims, prototypes=prototypes,
                   batch=batch, iterations=iterations,
                   update_passes=update_passes)


def svm_workload(
    n_sv: int = 4096,
    n_samples: int = 65_536,
    dims: int = 512,
    batch: int = 4096,
) -> Workload:
    """SVM inference with an RBF kernel.

    Per batch: squared distances to the support vectors, the kernel
    exponential, and the decision value as kernel-matrix x alpha -- an
    operation-intensive block per iteration, which is why SVM keeps high
    operational intensity on Cambricon-F (Section 6)."""
    b = ProgramBuilder("svm")
    sv = b.input("sv", (n_sv, dims))
    alpha = b.input("alpha", (n_sv, 1))
    n_batches = max(1, n_samples // batch)
    for i in range(n_batches):
        x = b.input(f"x{i}", (batch, dims))
        dist = b.tensor("dist", (batch, n_sv))
        b.emit(Opcode.EUCLIDIAN1D, (x.region(), sv.region()), (dist.region(),))
        kern = b.tensor("kern", (batch, n_sv))
        b.emit(Opcode.ACT1D, (dist.region(),), (kern.region(),), {"func": "exp"})
        dec = b.tensor("dec", (batch, 1))
        b.emit(Opcode.MATMUL, (kern.region(), alpha.region()), (dec.region(),))
        b.mark_output(dec)
    return b.build(n_sv=n_sv, n_samples=n_samples, dims=dims, batch=batch)
