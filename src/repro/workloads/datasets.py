"""Synthetic dataset generators.

The paper evaluates its ML benchmarks on "a randomly generated data set,
which contains 262 thousand 512-dimension samples within 128 categories".
These helpers produce equivalently-shaped data: Gaussian clusters with
labels, plus random matrices for MATMUL.  All generators are seeded for
reproducibility.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def clustered_samples(
    n_samples: int = 262_144,
    dims: int = 512,
    categories: int = 128,
    spread: float = 0.35,
    seed: int = 2019,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(samples, labels, category centers) with Gaussian cluster structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(categories, dims))
    labels = rng.integers(0, categories, size=n_samples)
    samples = centers[labels] + spread * rng.normal(size=(n_samples, dims))
    return samples.astype(np.float64), labels, centers.astype(np.float64)


def random_matrices(order: int, seed: int = 2019) -> Tuple[np.ndarray, np.ndarray]:
    """Two random square matrices for the MATMUL benchmark."""
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(order, order)).astype(np.float64),
            rng.normal(size=(order, order)).astype(np.float64))


def random_images(batch: int, size: int, channels: int = 3,
                  seed: int = 2019) -> np.ndarray:
    """Random NHWC image tensors (performance depends only on shape)."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, size, size, channels)).astype(np.float64)
