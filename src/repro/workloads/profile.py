"""Workload profiling: primitive mixes, CPU-time decomposition (the
Table-1 methodology), and footprint statistics.

The paper's Table 1 decomposes *CPU execution time* into seven primitive
classes; :func:`cpu_time_shares` reproduces that with a throughput model
(GEMM-shaped primitives near BLAS rates, element-wise/pooling/sorting
memory- or branch-bound), while :func:`op_shares` reports raw arithmetic
shares.  Both operate on any FISA program.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.isa import Instruction, Opcode, POOL_OPCODES

#: opcode -> Table-1 primitive class
PRIMITIVE_OF: Dict[Opcode, str] = {
    Opcode.EUCLIDIAN1D: "IP",
    Opcode.CV2D: "CONV",
    Opcode.CV3D: "CONV",
    Opcode.LRN: "CONV",  # folded into the convolution stage share
    Opcode.MATMUL: "MMM",
    Opcode.SORT1D: "SORT",
    Opcode.MERGE1D: "SORT",
    Opcode.COUNT1D: "COUNT",
    Opcode.ADD1D: "ELTW",
    Opcode.SUB1D: "ELTW",
    Opcode.MUL1D: "ELTW",
    Opcode.ACT1D: "ELTW",
    Opcode.HSUM1D: "ELTW",
    Opcode.HPROD1D: "ELTW",
}
for _op in POOL_OPCODES:
    PRIMITIVE_OF[_op] = "POOL"

PRIMITIVES: List[str] = ["IP", "CONV", "POOL", "MMM", "ELTW", "SORT", "COUNT"]

#: CPU sustained throughput per primitive class (ops/s): BLAS-class GEMM
#: vs memory-/branch-bound loops -- the reason LVQ's modest element-wise
#: op count eats ~60% of its CPU time in the paper's profile.
CPU_RATE: Dict[str, float] = {
    "IP": 5e10,
    "CONV": 3e10,
    "MMM": 5e10,
    "POOL": 3e9,
    "ELTW": 1.0e9,
    "SORT": 4e8,
    "COUNT": 2e9,
}


def op_shares(program: Iterable[Instruction]) -> Dict[str, float]:
    """Arithmetic-operation share per primitive class."""
    work = defaultdict(int)
    for inst in program:
        work[PRIMITIVE_OF[inst.opcode]] += inst.work()
    total = sum(work.values()) or 1
    return {p: work.get(p, 0) / total for p in PRIMITIVES}


def cpu_time_shares(program: Iterable[Instruction]) -> Dict[str, float]:
    """CPU execution-time share per primitive class (Table-1 methodology)."""
    seconds = defaultdict(float)
    for inst in program:
        prim = PRIMITIVE_OF[inst.opcode]
        seconds[prim] += inst.work() / CPU_RATE[prim]
    total = sum(seconds.values()) or 1.0
    return {p: seconds.get(p, 0.0) / total for p in PRIMITIVES}


@dataclass(frozen=True)
class ProgramStats:
    """Aggregate statistics of a FISA program."""

    instructions: int
    work: int
    io_bytes: int
    distinct_tensors: int
    largest_footprint: int

    @property
    def operational_intensity(self) -> float:
        """Upper-bound OI: every distinct byte moved exactly once."""
        return self.work / self.io_bytes if self.io_bytes else float("inf")


def program_stats(program: Iterable[Instruction]) -> ProgramStats:
    program = list(program)
    seen = set()
    io = 0
    largest = 0
    for inst in program:
        largest = max(largest, inst.io_bytes())
        for r in inst.inputs + inst.outputs:
            if r.tensor.uid not in seen:
                seen.add(r.tensor.uid)
                io += r.tensor.nbytes
    return ProgramStats(
        instructions=len(program),
        work=sum(i.work() for i in program),
        io_bytes=io,
        distinct_tensors=len(seen),
        largest_footprint=largest,
    )
