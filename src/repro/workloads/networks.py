"""Network workloads: VGG-16, ResNet-152 (Table 5), plus AlexNet and a
3-layer MLP (used by the Table-1 primitive-breakdown analysis).

All generators take a ``batch`` and an ``input_size`` so the same code
produces paper-scale programs for the timing simulator and miniature ones
for functional verification.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.isa import Opcode
from .builder import ProgramBuilder, Workload


def vgg16(batch: int = 32, input_size: int = 224, num_classes: int = 1000) -> Workload:
    """VGG-16: thirteen 3x3 same-padded convolutions in five stages plus
    three fully-connected layers (~138 M parameters at full scale)."""
    b = ProgramBuilder("vgg16")
    x = b.input("img", (batch, input_size, input_size, 3)).region()
    stages: List[Tuple[int, int]] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)]
    for convs, width in stages:
        for _ in range(convs):
            x = b.conv2d(x, width, 3, 3, stride=1, pad=1, relu=True)
        x = b.pool2d(x, Opcode.MAX2D, k=2)
    x = b.flatten(x)
    x = b.fc(x, 4096, relu=True)
    x = b.fc(x, 4096, relu=True)
    x = b.fc(x, num_classes)
    b.mark_output(x.tensor)
    return b.build(batch=batch, input_size=input_size)


def _bottleneck(b: ProgramBuilder, x, width: int, stride: int, project: bool):
    """ResNet v1 bottleneck: 1x1 -> 3x3 -> 1x1 with identity shortcut."""
    shortcut = x
    out = b.conv2d(x, width, 1, 1, stride=stride, relu=True)
    out = b.conv2d(out, width, 3, 3, stride=1, pad=1, relu=True)
    out = b.conv2d(out, width * 4, 1, 1, stride=1)
    if project:
        shortcut = b.conv2d(x, width * 4, 1, 1, stride=stride)
    out = b.add(out, shortcut)
    return b.relu(out)


def resnet152(
    batch: int = 32,
    input_size: int = 224,
    num_classes: int = 1000,
    blocks: Optional[List[int]] = None,
) -> Workload:
    """ResNet-152: [3, 8, 36, 3] bottleneck stages (~60 M parameters).

    Pass a smaller ``blocks`` list (e.g. ``[1, 1, 1, 1]``) for functional
    tests; the layer structure stays faithful.
    """
    blocks = blocks if blocks is not None else [3, 8, 36, 3]
    b = ProgramBuilder("resnet152")
    x = b.input("img", (batch, input_size, input_size, 3)).region()
    x = b.conv2d(x, 64, 7, 7, stride=2, pad=3, relu=True)
    x = b.pool2d(x, Opcode.MAX2D, k=3, stride=2, pad=1)
    width = 64
    for stage, n_blocks in enumerate(blocks):
        for block in range(n_blocks):
            first = block == 0
            stride = 2 if (first and stage > 0) else 1
            x = _bottleneck(b, x, width, stride, project=first)
        width *= 2
    # Global average pool as a full-window Avg2D, then the classifier.
    n, h, w, c = x.shape
    x = b.pool2d(x, Opcode.AVG2D, k=h, stride=h)
    x = b.flatten(x)
    x = b.fc(x, num_classes)
    b.mark_output(x.tensor)
    return b.build(batch=batch, input_size=input_size, blocks=list(blocks))


def alexnet(batch: int = 16, input_size: int = 227, num_classes: int = 1000) -> Workload:
    """AlexNet with its LRN layers -- the Table-1 'CNN' representative."""
    b = ProgramBuilder("alexnet")
    x = b.input("img", (batch, input_size, input_size, 3)).region()
    x = b.conv2d(x, 96, 11, 11, stride=4, relu=True)
    x = b.lrn(x)
    x = b.pool2d(x, Opcode.MAX2D, k=3, stride=2)
    x = b.conv2d(x, 256, 5, 5, stride=1, pad=2, relu=True)
    x = b.lrn(x)
    x = b.pool2d(x, Opcode.MAX2D, k=3, stride=2)
    x = b.conv2d(x, 384, 3, 3, stride=1, pad=1, relu=True)
    x = b.conv2d(x, 384, 3, 3, stride=1, pad=1, relu=True)
    x = b.conv2d(x, 256, 3, 3, stride=1, pad=1, relu=True)
    x = b.pool2d(x, Opcode.MAX2D, k=3, stride=2)
    x = b.flatten(x)
    x = b.fc(x, 4096, relu=True)
    x = b.fc(x, 4096, relu=True)
    x = b.fc(x, num_classes)
    b.mark_output(x.tensor)
    return b.build(batch=batch, input_size=input_size)


def mlp(batch: int = 64, features: int = 2048, hidden: int = 4096,
        num_classes: int = 1000) -> Workload:
    """A 3-layer multi-layer perceptron -- the Table-1 'DNN' representative
    (its time is almost entirely MMM)."""
    b = ProgramBuilder("mlp")
    x = b.input("x", (batch, features)).region()
    x = b.fc(x, hidden, relu=True)
    x = b.fc(x, hidden, relu=True)
    x = b.fc(x, num_classes)
    b.mark_output(x.tensor)
    return b.build(batch=batch, features=features)
