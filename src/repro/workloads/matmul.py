"""The MATMUL benchmark: one square matrix multiplication (Table 5 uses
order 32,768 -- "the most important operation in the machine learning
domain")."""

from __future__ import annotations

from ..core.isa import Opcode
from .builder import ProgramBuilder, Workload


def matmul_workload(m: int = 32_768, k: int = None, n: int = None) -> Workload:
    """``C[m, n] = A[m, k] @ B[k, n]``; square of order ``m`` by default."""
    k = m if k is None else k
    n = m if n is None else n
    b = ProgramBuilder("matmul")
    a = b.input("A", (m, k))
    bm = b.input("B", (k, n))
    c = b.tensor("C", (m, n))
    b.emit(Opcode.MATMUL, (a.region(), bm.region()), (c.region(),))
    b.mark_output(c)
    return b.build(m=m, k=k, n=n)
