"""The MATMUL benchmark: one square matrix multiplication (Table 5 uses
order 32,768 -- "the most important operation in the machine learning
domain")."""

from __future__ import annotations

from ..core.isa import Opcode
from .builder import ProgramBuilder, Workload


def matmul_workload(m: int = 32_768, k: int = None, n: int = None) -> Workload:
    """``C[m, n] = A[m, k] @ B[k, n]``; square of order ``m`` by default."""
    k = m if k is None else k
    n = m if n is None else n
    b = ProgramBuilder("matmul")
    a = b.input("A", (m, k))
    bm = b.input("B", (k, n))
    c = b.tensor("C", (m, n))
    b.emit(Opcode.MATMUL, (a.region(), bm.region()), (c.region(),))
    b.mark_output(c)
    return b.build(m=m, k=k, n=n)


def mm_fc_workload(m: int = 48, k: int = 48, n: int = 48,
                   classes: int = 10) -> Workload:
    """MatMul feeding a small fully-connected head (the profiling workload).

    ``logits = relu(A @ W1) @ W2`` -- two GEMMs with an element-wise
    activation between them.  Small enough to execute functionally in
    milliseconds, yet structurally rich: SD/PD decomposition fires on the
    GEMMs, the activation exercises the element-wise path, and the repeated
    MatMul shapes give the timing simulator's signature cache something to
    hit.  ``repro profile mm_fc`` uses this as its default subject.
    """
    b = ProgramBuilder("mm_fc")
    a = b.input("A", (m, k))
    w1 = b.param("W1", (k, n))
    w2 = b.param("W2", (n, classes))
    h = b.tensor("H", (m, n))
    b.emit(Opcode.MATMUL, (a.region(), w1.region()), (h.region(),))
    hr = b.tensor("Hr", (m, n))
    b.emit(Opcode.ACT1D, (h.region(),), (hr.region(),), {"func": "relu"})
    logits = b.tensor("logits", (m, classes))
    b.emit(Opcode.MATMUL, (hr.region(), w2.region()), (logits.region(),))
    b.mark_output(logits)
    return b.build(m=m, k=k, n=n, classes=classes)
