"""The seven paper benchmarks (Table 5) at paper scale and at test scale.

``paper_benchmark(name)`` builds the configuration the evaluation section
uses; ``small_benchmark(name)`` builds a miniature with identical structure
for functional verification, where programs must actually execute to
numerically correct results in milliseconds.
"""

from __future__ import annotations

from typing import Callable, Dict

from .builder import Workload
from .matmul import matmul_workload, mm_fc_workload
from .mlalgos import kmeans_workload, knn_workload, lvq_workload, svm_workload
from .networks import resnet152, vgg16

#: benchmark name -> paper-scale factory (Table 5 parameters)
PAPER_BENCHMARKS: Dict[str, Callable[[], Workload]] = {
    "VGG-16": lambda: vgg16(batch=32),
    "ResNet-152": lambda: resnet152(batch=32),
    "K-NN": lambda: knn_workload(n_samples=262_144, dims=512, categories=128),
    "K-Means": lambda: kmeans_workload(n_samples=262_144, dims=512, k=128),
    "LVQ": lambda: lvq_workload(n_samples=262_144, dims=512),
    "SVM": lambda: svm_workload(n_sv=4096, n_samples=65_536, dims=512),
    "MATMUL": lambda: matmul_workload(32_768),
}

_SMALL: Dict[str, Callable[[], Workload]] = {
    "VGG-16": lambda: vgg16(batch=1, input_size=32, num_classes=10),
    "ResNet-152": lambda: resnet152(batch=1, input_size=32, num_classes=10,
                                    blocks=[1, 1, 1, 1]),
    "K-NN": lambda: knn_workload(n_samples=64, dims=8, categories=4, batch=16),
    "K-Means": lambda: kmeans_workload(n_samples=64, dims=8, k=4, batch=16),
    "LVQ": lambda: lvq_workload(n_samples=64, dims=8, prototypes=2, batch=16),
    "SVM": lambda: svm_workload(n_sv=8, n_samples=32, dims=8, batch=16),
    "MATMUL": lambda: matmul_workload(24),
}


#: profiling subjects for ``repro profile``: every functional-scale
#: miniature plus dedicated instrumentation workloads.  These must execute
#: functionally in milliseconds -- the profiler runs them for real.
PROFILE_BENCHMARKS: Dict[str, Callable[[], Workload]] = {
    "mm_fc": lambda: mm_fc_workload(),
    "matmul": lambda: matmul_workload(24),
    **{name: (lambda n=name: small_benchmark(n)) for name in _SMALL},
}


def profile_benchmark_names() -> list:
    """Every name ``repro profile`` accepts (stable, sorted)."""
    return sorted(PROFILE_BENCHMARKS)


def resolve_profile_benchmark(name: str) -> str:
    """Map a user-supplied benchmark name to its canonical suite key.

    Exact matches win; otherwise the match is case-insensitive (the suite
    mixes styles: ``mm_fc`` vs ``VGG-16``).  Raises :class:`KeyError`
    whose message lists every valid name -- the CLI surfaces it verbatim
    with exit code 2 instead of a traceback.
    """
    if name in PROFILE_BENCHMARKS:
        return name
    folded = {key.lower(): key for key in PROFILE_BENCHMARKS}
    if name.lower() in folded:
        return folded[name.lower()]
    raise KeyError(
        f"unknown benchmark {name!r}; valid names: "
        f"{', '.join(profile_benchmark_names())}")


def profile_benchmark(name: str) -> Workload:
    """Build one profiling subject (functional scale)."""
    return PROFILE_BENCHMARKS[resolve_profile_benchmark(name)]()


def paper_benchmark(name: str) -> Workload:
    """Build one of the seven Table-5 benchmarks at paper scale."""
    try:
        return PAPER_BENCHMARKS[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; one of {sorted(PAPER_BENCHMARKS)}")


def small_benchmark(name: str) -> Workload:
    """Structurally identical miniature for functional tests."""
    try:
        return _SMALL[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; one of {sorted(_SMALL)}")
