"""Program construction helpers.

:class:`ProgramBuilder` is the thin "compiler frontend" that turns layer
descriptions into FISA instruction sequences: it owns tensor naming, layer
chaining, and explicit padding (FISA convolutions are valid-only; the
frontend materializes padded tensors with an identity-copy instruction into
the interior, keeping region decomposition exact).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.isa import Instruction, Opcode, program_work
from ..core.tensor import FP16, DType, Region, Tensor


@dataclass
class Workload:
    """A named FISA program plus the tensors a runner must bind.

    ``inputs`` are tensors the caller fills with data (or leaves synthetic);
    ``outputs`` are where results land; ``params`` are weights/constants.
    """

    name: str
    program: List[Instruction]
    inputs: Dict[str, Tensor] = field(default_factory=dict)
    outputs: Dict[str, Tensor] = field(default_factory=dict)
    params: Dict[str, Tensor] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def work(self) -> int:
        """Total arithmetic operations of the program."""
        return program_work(self.program)

    @property
    def param_count(self) -> int:
        """Total parameter elements (for checking against Table 5)."""
        return sum(t.nelems for t in self.params.values())

    def io_bytes(self) -> int:
        seen, total = set(), 0
        for inst in self.program:
            for r in inst.inputs + inst.outputs:
                if r.tensor.uid not in seen:
                    seen.add(r.tensor.uid)
                    total += r.tensor.nbytes
        return total


class ProgramBuilder:
    """Builds FISA programs layer by layer."""

    def __init__(self, name: str, dtype: DType = FP16):
        self.name = name
        self.dtype = dtype
        self.program: List[Instruction] = []
        self.inputs: Dict[str, Tensor] = {}
        self.outputs: Dict[str, Tensor] = {}
        self.params: Dict[str, Tensor] = {}
        self._ids = itertools.count()

    # -- tensors -----------------------------------------------------------

    def _fresh(self, base: str) -> str:
        return f"{self.name}.{base}{next(self._ids)}"

    def tensor(self, base: str, shape: Tuple[int, ...]) -> Tensor:
        return Tensor(self._fresh(base), shape, self.dtype)

    def input(self, base: str, shape: Tuple[int, ...]) -> Tensor:
        t = self.tensor(base, shape)
        self.inputs[t.name] = t
        return t

    def param(self, base: str, shape: Tuple[int, ...]) -> Tensor:
        t = self.tensor(base, shape)
        self.params[t.name] = t
        return t

    def mark_output(self, tensor: Tensor) -> Tensor:
        self.outputs[tensor.name] = tensor
        return tensor

    # -- raw emission ---------------------------------------------------------

    def emit(self, opcode: Opcode, inputs, outputs, attrs: Optional[dict] = None) -> None:
        self.program.append(Instruction(opcode, tuple(inputs), tuple(outputs),
                                        dict(attrs or {})))

    # -- layers -----------------------------------------------------------------

    def pad2d(self, x: Region, pad: int) -> Region:
        """Explicit zero padding: copy into the interior of a larger tensor."""
        if pad == 0:
            return x
        n, h, w, c = x.shape
        xp = self.tensor("pad", (n, h + 2 * pad, w + 2 * pad, c))
        interior = xp.region()[:, pad : pad + h, pad : pad + w, :]
        self.emit(Opcode.ACT1D, (x,), (interior,), {"func": "identity"})
        return xp.region()

    def conv2d(self, x: Region, cout: int, kh: int, kw: int,
               stride: int = 1, pad: int = 0, relu: bool = False) -> Region:
        x = self.pad2d(x, pad)
        n, h, w, cin = x.shape
        weight = self.param("w", (kh, kw, cin, cout))
        ho = (h - kh) // stride + 1
        wo = (w - kw) // stride + 1
        out = self.tensor("conv", (n, ho, wo, cout))
        self.emit(Opcode.CV2D, (x, weight.region()), (out.region(),), {"stride": stride})
        result = out.region()
        if relu:
            result = self.relu(result)
        return result

    def pool2d(self, x: Region, kind: Opcode = Opcode.MAX2D,
               k: int = 2, stride: Optional[int] = None, pad: int = 0) -> Region:
        x = self.pad2d(x, pad)
        stride = k if stride is None else stride
        n, h, w, c = x.shape
        ho = (h - k) // stride + 1
        wo = (w - k) // stride + 1
        out = self.tensor("pool", (n, ho, wo, c))
        self.emit(kind, (x,), (out.region(),),
                  {"kh": k, "kw": k, "sh": stride, "sw": stride})
        return out.region()

    def lrn(self, x: Region, size: int = 5) -> Region:
        out = self.tensor("lrn", x.shape)
        self.emit(Opcode.LRN, (x,), (out.region(),), {"size": size})
        return out.region()

    def relu(self, x: Region) -> Region:
        out = self.tensor("relu", x.shape)
        self.emit(Opcode.ACT1D, (x,), (out.region(),), {"func": "relu"})
        return out.region()

    def add(self, a: Region, b: Region) -> Region:
        out = self.tensor("add", a.shape)
        self.emit(Opcode.ADD1D, (a, b), (out.region(),))
        return out.region()

    def flatten(self, x: Region) -> Region:
        """Rank-collapse copy (N, ...) -> (N, prod) before an FC layer."""
        n = x.shape[0]
        rest = 1
        for d in x.shape[1:]:
            rest *= d
        out = self.tensor("flat", (n, rest))
        self.emit(Opcode.ACT1D, (x,), (out.region(),), {"func": "identity"})
        return out.region()

    def fc(self, x: Region, features: int, relu: bool = False) -> Region:
        n, fin = x.shape
        weight = self.param("fcw", (fin, features))
        out = self.tensor("fc", (n, features))
        self.emit(Opcode.MATMUL, (x, weight.region()), (out.region(),))
        result = out.region()
        if relu:
            result = self.relu(result)
        return result

    # -- finish ---------------------------------------------------------------

    def build(self, **meta) -> Workload:
        return Workload(
            name=self.name,
            program=list(self.program),
            inputs=dict(self.inputs),
            outputs=dict(self.outputs),
            params=dict(self.params),
            meta=dict(meta),
        )
