"""Command-line interface: ``python -m repro <command>``.

Commands::

    specs                           print the instance specifications (Table 6)
    simulate  -m f1 -b VGG-16       simulate a benchmark, print the report
    timeline  -m f100 -b K-NN       ASCII execution timeline (Fig 13)
    trace     -b K-NN -o t.json     Chrome/Perfetto trace of a simulation
    profile   mm_fc                 run + simulate with telemetry; RunReport
    flame     mm_fc --html f.html   sampling-profile the hot path; flamegraph
    flame-diff base.json cand.json  diff two profiles; exit 3 on regression
    diff      base.json cand.json   compare two RunReports; exit 3 on regression
    serve-metrics mm_fc --port 8000 run a workload under a live /metrics server
    events tail events.jsonl        filter/pretty-print a structured event log
    events tail --follow            same, but keep polling for appended events
    trace ls                        list recorded traces from the run ledger
    trace show <trace_id>           joined ledger rows/spans/events for a trace
    top                             live /metrics dashboard (curses-free)
    figures   -o figures/           render every paper figure as SVG
    dse                             Table-4 hierarchy sweep (costs only)
    assemble  prog.fisa -o prog.bin assemble FISA text to the binary format
    disasm    prog.bin              disassemble a FISA binary
    lint      prog.fisa             static analysis (shape/def-use/hazards)
    compile   mm_fc                 compile a fractal plan; print its stats
    plan-lint mm_fc                 dataflow-analyze a compiled plan (P1xx)
    run       prog.fisa             assemble + execute with random inputs

``simulate``, ``timeline`` and ``profile`` accept ``--json`` to emit the
schema-versioned RunReport document instead of human text (see
docs/TELEMETRY.md).  ``lint`` and ``plan-lint`` accept ``--json`` to emit
the shared schema-versioned ``repro.diag`` diagnostics document and use
the same exit-code contract: 0 = clean, 1 = findings gate, 2 = the input
could not be parsed.  ``diff`` implements the perf-gate exit-code
contract: 0 = pass, 2 = usage/IO error, 3 = gated regression.

``profile`` and ``simulate`` take the observability flags ``--serve PORT``
(live /metrics + /healthz + /events while the run is in flight),
``--events PATH`` (stream the structured event log as JSONL) and
``--crash-dir DIR`` (dump a flight-recorder crash bundle on an uncaught
exception) -- see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from types import SimpleNamespace
from typing import List, Optional

import numpy as np

from .core.machine import Machine, cambricon_f1, cambricon_f100

MACHINES = {"f1": cambricon_f1, "f100": cambricon_f100}


def _machine(args) -> Machine:
    machine = MACHINES[args.machine]()
    flags = {}
    if getattr(args, "no_ttt", False):
        flags["use_ttt"] = False
    if getattr(args, "no_broadcast", False):
        flags["use_broadcast"] = False
    if getattr(args, "no_concat", False):
        flags["use_concatenation"] = False
    return machine.with_features(**flags) if flags else machine


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-m", "--machine", choices=sorted(MACHINES), default="f1")
    p.add_argument("--no-ttt", action="store_true",
                   help="disable the tensor transposition table")
    p.add_argument("--no-broadcast", action="store_true",
                   help="disable data broadcasting")
    p.add_argument("--no-concat", action="store_true",
                   help="disable pipeline concatenation")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """Observability flags shared by the long-running commands."""
    p.add_argument("--serve", type=int, metavar="PORT", default=None,
                   help="expose live /metrics, /healthz and /events on "
                        "127.0.0.1:PORT while the run is in flight "
                        "(0 = ephemeral port)")
    p.add_argument("--events", metavar="PATH",
                   help="stream the structured event log to PATH as JSONL "
                        "(read back with `repro events tail`)")
    p.add_argument("--crash-dir", metavar="DIR",
                   help="dump a flight-recorder crash bundle under DIR on "
                        "an uncaught exception")
    p.add_argument("--stall-after", type=float, default=30.0, metavar="S",
                   help="seconds without a progress beat before /healthz "
                        "reports stalled (default 30)")
    p.add_argument("--events-max-bytes", type=int, default=None,
                   metavar="N",
                   help="size-bound the --events JSONL sink: roll to "
                        "PATH.1 when the file would exceed N bytes "
                        "(default unbounded)")
    p.add_argument("--slo", action="append", metavar="RULE", default=None,
                   help="arm a live SLO rule, e.g. "
                        "'sim.sig_cache.hits > 100 for 5s as warm-cache' "
                        "(repeatable; fires alert events, the "
                        "repro_alerts_active gauge and /alerts; "
                        "syntax in docs/OBSERVABILITY.md)")


def _writable_error(path: str) -> Optional[str]:
    """Why ``path`` cannot be created/overwritten, or None if it can."""
    p = Path(path)
    if p.is_dir():
        return "is a directory"
    parent = p.parent if str(p.parent) else Path(".")
    if not parent.exists():
        return f"parent directory {parent} does not exist"
    if not parent.is_dir():
        return f"{parent} is not a directory"
    if not os.access(parent, os.W_OK):
        return f"parent directory {parent} is not writable"
    if p.exists() and not os.access(p, os.W_OK):
        return "exists and is not writable"
    return None


def _check_outputs(command: str, **paths) -> Optional[int]:
    """Validate output paths up front; returns 2 after printing a clear
    message when any is unwritable, else None (see ISSUE: no tracebacks
    for bad ``-o/--trace/--spans/--events`` targets)."""
    for flag, path in paths.items():
        if not path:
            continue
        problem = _writable_error(str(path))
        if problem:
            print(f"{command}: cannot write --{flag.replace('_', '-')} "
                  f"{path}: {problem}", file=sys.stderr)
            return 2
    return None


@contextmanager
def _observability(args, benchmark: str, machine_name: str, command: str):
    """Arm the obs layer for one CLI run per the --serve/--events/--crash-dir
    /--slo flags; yields a handle with the event log, watchdog, flight
    recorder, (optional) SLO engine and (optional) metrics server.
    Everything is restored on exit."""
    from . import obs, telemetry

    # Parse --slo rules before touching any state: a bad rule is a usage
    # error (exit 2), not a mid-run surprise.
    slo_rules = []
    for text in getattr(args, "slo", None) or []:
        try:
            slo_rules.append(obs.parse_slo_rule(text))
        except ValueError as err:
            print(f"{command}: {err}", file=sys.stderr)
            raise SystemExit(2)

    event_log = obs.get_event_log()
    prior_enabled = event_log.enabled
    event_log.reset()
    event_log.enable()
    if getattr(args, "events", None):
        event_log.attach_jsonl(args.events,
                               max_bytes=getattr(args, "events_max_bytes",
                                                 None))
    watchdog = obs.install_watchdog(
        obs.Watchdog(stall_after_s=getattr(args, "stall_after", 30.0)))
    recorder = obs.FlightRecorder(event_log=event_log,
                                  registry=telemetry.get_registry(),
                                  tracer=telemetry.get_tracer())
    recorder.config.update({"command": command, "benchmark": benchmark,
                            "machine": machine_name,
                            "argv": [str(a) for a in (sys.argv or [])]})
    recorder.report_context.update({"benchmark": benchmark,
                                    "machine": machine_name})
    slo_engine = (obs.SLOEngine(slo_rules, telemetry.get_registry(),
                                event_log=event_log)
                  if slo_rules else None)
    server = None
    try:
        if getattr(args, "serve", None) is not None:
            server = obs.MetricsServer(registry=telemetry.get_registry(),
                                       event_log=event_log,
                                       watchdog=watchdog,
                                       slo=slo_engine,
                                       port=int(args.serve)).start()
            print(f"[obs] serving {server.url}/metrics "
                  f"(/healthz, /events, /alerts)", file=sys.stderr)
        handle = SimpleNamespace(event_log=event_log, watchdog=watchdog,
                                 recorder=recorder, server=server,
                                 slo=slo_engine)
        crash_dir = getattr(args, "crash_dir", None)
        with obs.event_context(benchmark=benchmark, machine=machine_name):
            if crash_dir:
                with obs.crash_scope(crash_dir, f"{command}-{benchmark}",
                                     recorder=recorder):
                    recorder.mark("run.start")
                    yield handle
                    recorder.mark("run.end")
            else:
                recorder.mark("run.start")
                yield handle
                recorder.mark("run.end")
    finally:
        if slo_engine is not None:
            # Final pass so a run without a single /metrics scrape still
            # fires (and logs) any end-state violations.
            try:
                slo_engine.evaluate()
            except Exception:
                pass
        if server is not None:
            server.stop()
        obs.install_watchdog(None)
        event_log.close_sink()
        event_log.enabled = prior_enabled


def cmd_specs(args) -> int:
    for factory in (cambricon_f100, cambricon_f1):
        print(factory().describe())
        print()
    return 0


def _sim_run_report(args, machine, rep, obs_handle=None):
    """RunReport for one simulator-only CLI invocation (``--json``)."""
    from . import telemetry

    return telemetry.build_run_report(
        benchmark=args.benchmark,
        machine=machine.name,
        registry=telemetry.get_registry() if telemetry.get_registry().enabled
        else None,
        sim_report=rep,
        event_log=obs_handle.event_log if obs_handle is not None else None,
        health=(obs_handle.watchdog.health_section()
                if obs_handle is not None else None),
        notes={"command": args.command},
    )


def _wants_obs(args) -> bool:
    return (getattr(args, "serve", None) is not None
            or bool(getattr(args, "events", None))
            or bool(getattr(args, "crash_dir", None)))


def cmd_simulate(args) -> int:
    from .sim import FractalSimulator
    from .workloads import paper_benchmark

    machine = _machine(args)
    code = _check_outputs("simulate", events=getattr(args, "events", None))
    if code is not None:
        return code
    w = paper_benchmark(args.benchmark)
    from .obs import record_run
    if _wants_obs(args):
        from . import telemetry

        with telemetry.enabled_scope():
            with _observability(args, args.benchmark, machine.name,
                                "simulate") as handle:
                rep = FractalSimulator(
                    machine, collect_profiles=False).simulate(w.program)
            record_run("simulate", benchmark=args.benchmark,
                       machine=machine.name, makespan_s=rep.total_time)
            if getattr(args, "json", False):
                print(_sim_run_report(args, machine, rep, handle).to_json())
                return 0
    else:
        rep = FractalSimulator(machine,
                               collect_profiles=False).simulate(w.program)
        record_run("simulate", benchmark=args.benchmark, machine=machine.name,
                   makespan_s=rep.total_time)
    if getattr(args, "json", False):
        print(_sim_run_report(args, machine, rep).to_json())
        return 0
    print(f"{args.benchmark} on {machine.name}:")
    print(f"  time                {rep.total_time * 1e3:12.3f} ms")
    print(f"  attained            {rep.attained_ops / 1e12:12.2f} Tops "
          f"({rep.peak_fraction(machine.peak_ops):.1%} of peak)")
    print(f"  operational intensity {rep.operational_intensity:10.1f} ops/B")
    print(f"  root traffic        {rep.root_traffic / 2**20:12.1f} MiB")
    print(f"  TTT elided          {rep.stats.elided_bytes / 2**20:12.1f} MiB")
    print(f"  pre-assignable      {rep.stats.preassign_fraction:12.1%}")
    return 0


def cmd_timeline(args) -> int:
    from .sim import FractalSimulator
    from .sim.trace import render_ascii
    from .workloads import paper_benchmark

    machine = _machine(args)
    w = paper_benchmark(args.benchmark)
    rep = FractalSimulator(machine, collect_profiles=True).simulate(w.program)
    if getattr(args, "json", False):
        print(_sim_run_report(args, machine, rep).to_json())
        return 0
    names = [lv.name for lv in machine.levels]
    print(render_ascii(rep, width=args.width, max_depth=args.depth,
                       level_names=names))
    return 0


def cmd_verify(args) -> int:
    from .core.verify import verify_suite

    machine = _machine(args)
    reports = verify_suite(machine=machine, seed=args.seed)
    failed = 0
    for report in reports:
        print(report.summary())
        failed += not report.passed
    return 1 if failed else 0


def cmd_cost(args) -> int:
    from .cost.report import format_cost_report

    print(format_cost_report(_machine(args)))
    return 0


def cmd_trace(args) -> int:
    from .sim import FractalSimulator, write_chrome_trace
    from .workloads import paper_benchmark

    if not args.benchmark:
        print("trace: -b/--benchmark is required (or use `repro trace ls` / "
              "`repro trace show <trace_id>`)", file=sys.stderr)
        return 2
    machine = _machine(args)
    w = paper_benchmark(args.benchmark)
    rep = FractalSimulator(machine, collect_profiles=True).simulate(w.program)
    names = [lv.name for lv in machine.levels]
    write_chrome_trace(rep, args.out, level_names=names,
                       max_depth=args.depth)
    print(f"wrote {args.out} ({rep.total_time * 1e3:.3f} ms simulated; "
          f"open in chrome://tracing or Perfetto)")
    return 0


def cmd_figures(args) -> int:
    from .viz import render_all

    paths = render_all(args.out)
    for name, path in sorted(paths.items()):
        print(f"wrote {path}")
    return 0


def cmd_dse(args) -> int:
    from .cost.dse import explore_design_space

    print(f"{'hierarchy':16s} {'area mm2':>9s} {'power W':>8s}  per-level memory")
    for p in explore_design_space():
        mems = " ".join(f"{lv.mem_bytes / 2**20:.2f}M"
                        for lv in p.machine.levels)
        print(f"{p.hierarchy:16s} {p.area_mm2:9.1f} {p.power_w:8.2f}  [{mems}]")
    return 0


def cmd_assemble(args) -> int:
    from .frontend import assemble, encode_program

    with open(args.source, encoding="utf-8") as f:
        w = assemble(f.read(), name=args.source)
    data = encode_program(w.program)
    out = args.out or (args.source + ".bin")
    with open(out, "wb") as f:
        f.write(data)
    print(f"assembled {len(w.program)} instructions "
          f"({len(data)} bytes) -> {out}")
    return 0


def cmd_disasm(args) -> int:
    from .frontend import decode_program, disassemble

    with open(args.binary, "rb") as f:
        _, program = decode_program(f.read())
    sys.stdout.write(disassemble(program))
    return 0


def cmd_lint(args) -> int:
    """Statically analyze FISA programs; CI-friendly exit codes.

    0 = clean (warnings allowed unless --strict), 1 = analyzer errors,
    2 = parse failure.  With ``--json``, emits the schema-versioned
    ``repro.diag`` diagnostics document (shared with ``plan-lint``)
    instead of human text; parse failures go to stderr.
    """
    import json

    from .analysis import analyze_workload, diagnostics_document
    from .frontend import AssemblyError, assemble

    as_json = getattr(args, "json", False)
    results = []
    worst = 0
    for source in args.sources:
        try:
            with open(source, encoding="utf-8") as f:
                w = assemble(f.read(), name=source, lint=False)
        except AssemblyError as err:
            print(f"{source}: parse error: {err}",
                  file=sys.stderr if as_json else sys.stdout)
            worst = max(worst, 2)
            continue
        except OSError as err:
            print(f"{source}: {err}",
                  file=sys.stderr if as_json else sys.stdout)
            worst = max(worst, 2)
            continue
        result = analyze_workload(w)
        result.program_name = source
        results.append(result)
        gating = result.errors if not args.strict else result.diagnostics
        if not as_json:
            for d in result.diagnostics:
                print(d.format())
            print(f"{source}: {len(result.errors)} error(s), "
                  f"{len(result.warnings)} warning(s), "
                  f"{result.instructions} instruction(s)")
        if gating:
            worst = max(worst, 1)
    if as_json:
        print(json.dumps(diagnostics_document(results, tool="lint"),
                         indent=2))
    return worst


def cmd_profile(args) -> int:
    """Run a benchmark functionally AND through the timing simulator with
    telemetry enabled; write the merged, schema-versioned RunReport.

    Exit codes: **0** -- report written, **2** -- unknown benchmark or the
    report/trace could not be written.
    """
    from . import telemetry
    from .core.executor import FractalExecutor
    from .core.store import TensorStore
    from .sim import FractalSimulator, write_chrome_trace
    from .workloads import profile_benchmark, resolve_profile_benchmark

    machine = _machine(args)
    try:
        args.benchmark = resolve_profile_benchmark(args.benchmark)
    except KeyError as err:
        print(f"profile: {err.args[0]}")
        return 2
    out = args.out or f"runreport_{args.benchmark}.json"
    code = _check_outputs("profile", out=out, trace=args.trace,
                          spans=args.spans,
                          events=getattr(args, "events", None))
    if code is not None:
        return code
    w = profile_benchmark(args.benchmark)

    with telemetry.enabled_scope() as (registry, tracer):
        telemetry.reset()
        with _observability(args, args.benchmark, machine.name,
                            "profile") as handle:
            with tracer.span("host.profile", cat="host",
                             benchmark=args.benchmark, machine=machine.name):
                # Functional pass: real execution through the fractal
                # recursion.
                rng = np.random.default_rng(args.seed)
                store = TensorStore()
                for t in list(w.inputs.values()) + list(w.params.values()):
                    store.bind(t, rng.normal(size=t.shape))
                executor = FractalExecutor(machine, store)
                executor.run_program(w.program)
                handle.recorder.mark("functional.end")

                # Timing pass: the simulator's view of the same program.
                simulator = FractalSimulator(machine,
                                             collect_profiles=bool(args.trace))
                sim_report = simulator.simulate(w.program)

            report = telemetry.build_run_report(
                benchmark=args.benchmark,
                machine=machine.name,
                registry=registry,
                tracer=tracer,
                exec_stats=executor.stats,
                sim_report=sim_report,
                event_log=handle.event_log,
                health=handle.watchdog.health_section(),
                notes={"command": "profile", "seed": args.seed,
                       "program_instructions": len(w.program)},
            )
        try:
            report.write(out)
        except OSError as err:
            print(f"profile: cannot write {out}: {err}")
            return 2
        from .analysis.signatures import program_digest
        from .obs import record_report
        from .plan import fingerprint_digest, machine_fingerprint
        record_report(
            report, kind="profile", out=out,
            fingerprint=fingerprint_digest(machine_fingerprint(machine))[:16],
            program_digest=program_digest(w.program)[:16])

        if args.trace:
            names = [lv.name for lv in machine.levels]
            try:
                write_chrome_trace(sim_report, args.trace, level_names=names,
                                   spans=tracer.spans())
            except OSError as err:
                print(f"profile: cannot write {args.trace}: {err}")
                return 2
        if args.spans:
            try:
                n = tracer.export_jsonl(args.spans)
            except OSError as err:
                print(f"profile: cannot write {args.spans}: {err}")
                return 2
            print(f"wrote {n} spans -> {args.spans}")

    if report.spans_dropped:
        print(f"profile: warning: {report.spans_dropped} span(s) dropped from "
              f"the tracer ring buffer; rollups are incomplete "
              f"(raise Tracer max_spans or narrow the traced region)",
              file=sys.stderr)

    if getattr(args, "json", False):
        print(report.to_json())
        return 0

    stats = executor.stats
    cache = sim_report.cache
    print(f"profiled {args.benchmark} on {machine.name}:")
    print(f"  instructions        {sum(stats.instructions_per_level.values()):12d} "
          f"(depth {stats.max_depth_reached})")
    print(f"  fan-outs            {stats.fanouts:12d} -> {stats.fanout_parts} parts")
    print(f"  leaf kernels        {stats.kernel_calls:12d} "
          f"({', '.join(f'{k}:{v}' for k, v in sorted(stats.leaf_ops.items()))})")
    print(f"  bytes moved         {stats.bytes_read + stats.bytes_written:12d}")
    print(f"  sim sig-cache       {cache.sig_hits:6d} hits / "
          f"{cache.sig_misses} misses ({cache.sig_hit_rate:.0%})")
    print(f"  sim time            {sim_report.total_time * 1e3:12.3f} ms")
    if report.attribution:
        fracs = report.attribution.get("fractions", {})
        shares = " / ".join(f"{cat} {fracs.get(cat, 0.0):.0%}"
                            for cat in ("compute", "dma", "control", "reduction")
                            if fracs.get(cat, 0.0) > 0.005)
        print(f"  bottleneck          {report.attribution.get('classification', '?'):>12s} "
              f"({shares})")
    print(f"wrote {out}")
    if args.trace:
        print(f"wrote {args.trace} (open in Perfetto)")
    return 0


def cmd_diff(args) -> int:
    """Differentially profile two RunReport JSON documents.

    Exit codes: **0** -- no gated regression, **2** -- a document could not
    be read or fails :func:`repro.telemetry.validate_document`, **3** -- at
    least one gated metric regressed past the threshold.
    """
    import json

    from . import telemetry
    from .perf import DiffConfig, diff_documents

    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"diff: cannot read {path}: {err}", file=sys.stderr)
            return 2
        problems = telemetry.validate_document(doc)
        if problems:
            print(f"diff: {path} is not a valid RunReport:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2
        docs.append(doc)

    config = DiffConfig(rel_threshold=args.threshold,
                        gate_spans=args.gate_spans)
    result = diff_documents(docs[0], docs[1], config=config,
                            baseline_name=args.baseline,
                            candidate_name=args.candidate)
    if args.json:
        print(json.dumps(result.to_json_obj(), indent=2))
    else:
        print(result.format_table(limit=args.limit))
    return result.exit_code


def cmd_flame(args) -> int:
    """Sampling-profile a benchmark's hot path; write a profile doc.

    Runs the compile-once/replay-many loop under the statistical sampling
    profiler (``repro.obs.prof``), writes the schema-versioned
    ``repro.obs.profile`` JSON and -- with ``--html`` -- a self-contained
    flamegraph.  Exit codes: **0** profile written, **2** unknown
    benchmark or an output path is unwritable.
    """
    import json
    import time as _time

    from . import telemetry
    from .core.executor import FractalExecutor
    from .core.store import TensorStore
    from .obs.flame import format_top_table, render_flamegraph_html
    from .obs.prof import SamplingProfiler, record_profile
    from .workloads import profile_benchmark, resolve_profile_benchmark

    machine = _machine(args)
    try:
        args.benchmark = resolve_profile_benchmark(args.benchmark)
    except KeyError as err:
        print(f"flame: {err.args[0]}", file=sys.stderr)
        return 2
    if args.hz <= 0:
        print(f"flame: --hz must be positive (got {args.hz})",
              file=sys.stderr)
        return 2
    out = args.out or f"profile_{args.benchmark}.json"
    code = _check_outputs("flame", out=out, html=args.html)
    if code is not None:
        return code
    w = profile_benchmark(args.benchmark)

    with telemetry.enabled_scope() as (registry, tracer):
        telemetry.reset()
        rng = np.random.default_rng(args.seed)
        runs = 0
        profiler = SamplingProfiler(hz=args.hz, tracer=tracer,
                                    registry=registry)
        with profiler, tracer.span("host.flame", cat="host",
                                   benchmark=args.benchmark,
                                   machine=machine.name):
            deadline = _time.perf_counter() + args.duration
            while True:
                store = TensorStore()
                for t in list(w.inputs.values()) + list(w.params.values()):
                    store.bind(t, rng.normal(size=t.shape))
                executor = FractalExecutor(machine, store)
                # Compile + replay: samples attribute to "plan.compile" on
                # the cold pass and to step opcodes/levels on every replay.
                plan = executor.compile(w.program)
                executor.run_plan(plan)
                runs += 1
                if args.iterations and runs >= args.iterations:
                    break
                if not args.iterations and _time.perf_counter() >= deadline:
                    break
        doc = profiler.to_doc(
            benchmark=args.benchmark, machine=machine.name,
            meta={"command": "flame", "seed": args.seed, "runs": runs})

    try:
        with open(out, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    except OSError as err:
        print(f"flame: cannot write {out}: {err}", file=sys.stderr)
        return 2
    if args.html:
        try:
            with open(args.html, "w", encoding="utf-8") as f:
                f.write(render_flamegraph_html(doc))
        except OSError as err:
            print(f"flame: cannot write {args.html}: {err}", file=sys.stderr)
            return 2
    record_profile(doc, path=out, command="flame", runs=runs)

    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    print(f"sampled {args.benchmark} on {machine.name}: "
          f"{doc['samples']} samples @ {args.hz:g} Hz over {runs} run(s), "
          f"{doc['duration_s']:.2f}s")
    print(format_top_table(doc, limit=args.limit))
    print(f"wrote {out}")
    if args.html:
        print(f"wrote {args.html} (self-contained flamegraph)")
    return 0


def cmd_flame_diff(args) -> int:
    """Diff two recorded profiles; gate on attribution-share growth.

    Exit codes (the ``repro diff`` contract): **0** -- no share grew past
    the threshold, **2** -- a document could not be read or is not a valid
    ``repro.obs.profile``, **3** -- gated regression.
    """
    import json

    from .obs.flame import diff_profiles
    from .obs.prof import validate_profile

    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"flame-diff: cannot read {path}: {err}", file=sys.stderr)
            return 2
        problems = validate_profile(doc)
        if problems:
            print(f"flame-diff: {path} is not a valid profile:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2
        docs.append(doc)

    result = diff_profiles(docs[0], docs[1], threshold=args.threshold,
                           baseline_name=args.baseline,
                           candidate_name=args.candidate)
    if args.json:
        print(json.dumps(result.to_json_obj(), indent=2))
    else:
        print(result.format_table(limit=args.limit))
    return result.exit_code


def cmd_serve_metrics(args) -> int:
    """Run a workload in a loop under a live observability endpoint.

    Every iteration does one functional pass + one simulator pass of the
    benchmark while ``/metrics`` (OpenMetrics), ``/healthz`` (stall
    watchdog) and ``/events`` (recent structured events) are served on
    ``--port``.  With ``--hold`` the server keeps answering after the last
    iteration until interrupted -- handy for pointing Prometheus at a
    finished run.  Exit codes: 0 ok, 2 unknown benchmark / bad output path.
    """
    import time

    from . import telemetry
    from .core.executor import FractalExecutor
    from .core.store import TensorStore
    from .sim import FractalSimulator
    from .workloads import profile_benchmark, resolve_profile_benchmark

    machine = _machine(args)
    try:
        args.benchmark = resolve_profile_benchmark(args.benchmark)
    except KeyError as err:
        print(f"serve-metrics: {err.args[0]}", file=sys.stderr)
        return 2
    code = _check_outputs("serve-metrics",
                          events=getattr(args, "events", None))
    if code is not None:
        return code
    args.serve = args.port  # reuse the shared _observability plumbing
    w = profile_benchmark(args.benchmark)

    with telemetry.enabled_scope():
        telemetry.reset()
        with _observability(args, args.benchmark, machine.name,
                            "serve-metrics") as handle:
            rng = np.random.default_rng(args.seed)
            for i in range(args.iterations):
                store = TensorStore()
                for t in list(w.inputs.values()) + list(w.params.values()):
                    store.bind(t, rng.normal(size=t.shape))
                FractalExecutor(machine, store).run_program(w.program)
                FractalSimulator(machine,
                                 collect_profiles=False).simulate(w.program)
                handle.recorder.mark(f"iteration.{i}")
            from .obs import record_run
            record_run("serve-metrics", benchmark=args.benchmark,
                       machine=machine.name, iterations=args.iterations)
            print(f"served {args.iterations} iteration(s) of "
                  f"{args.benchmark} on {machine.name} at "
                  f"{handle.server.url}/metrics")
            if args.hold:
                print("holding; Ctrl-C to stop", file=sys.stderr)
                try:
                    while True:
                        time.sleep(0.5)
                except KeyboardInterrupt:
                    pass
    return 0


def cmd_events_tail(args) -> int:
    """Filter and pretty-print a structured event log (file or bundle dir).

    Exit codes: **0** events printed (possibly none matched), **2** the
    target could not be read.
    """
    import json

    from . import obs

    try:
        events, bad = obs.load_events(args.target)
    except OSError as err:
        if not args.follow:
            print(f"events tail: cannot read {args.target}: {err}",
                  file=sys.stderr)
            return 2
        events, bad = [], 0  # --follow waits for the file to appear
    pattern = None
    if getattr(args, "grep", None):
        import re

        try:
            pattern = re.compile(args.grep)
        except re.error as err:
            print(f"events tail: bad --grep pattern {args.grep!r}: {err}",
                  file=sys.stderr)
            return 2
    since = None
    if getattr(args, "since", None):
        try:
            since = obs.parse_since(args.since)
        except ValueError as err:
            print(f"events tail: {err}", file=sys.stderr)
            return 2
    picked = obs.filter_events(
        events,
        subsystem=args.subsystem,
        min_severity=args.severity,
        event_glob=args.event,
        last=args.last,
        pattern=pattern,
        since=since,
    )
    if args.json:
        for record in picked:
            print(json.dumps(record, default=repr))
    elif picked:
        print(obs.format_events(picked))
    shown = len(picked)
    total = len(events)
    if args.follow:
        # Poll-append mode: keep printing matching events as the writer
        # flushes them; Ctrl-C exits cleanly with the summary footer.
        base_ts = None
        for record in events:
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                base_ts = ts
                break
        sys.stdout.flush()
        limit = getattr(args, "follow_max", None)
        try:
            for record in obs.follow_events(args.target,
                                            poll_interval=args.poll,
                                            start_at_end=True):
                total += 1
                if not obs.filter_events([record],
                                         subsystem=args.subsystem,
                                         min_severity=args.severity,
                                         event_glob=args.event,
                                         pattern=pattern,
                                         since=since):
                    continue
                if base_ts is None:
                    ts = record.get("ts")
                    if isinstance(ts, (int, float)):
                        base_ts = ts
                if args.json:
                    print(json.dumps(record, default=repr), flush=True)
                else:
                    print(obs.format_event(record, base_ts=base_ts),
                          flush=True)
                shown += 1
                if limit is not None and shown >= limit:
                    break
        except KeyboardInterrupt:
            pass
    footer = (f"{shown} of {total} event(s) shown"
              + (f"; {bad} corrupt line(s) skipped" if bad else ""))
    print(footer, file=sys.stderr)
    return 0


def cmd_sentinel(args) -> int:
    """Statistical perf-trend verdict over the run-history store.

    Reads the ``history.jsonl`` time series (``repro.obs.history``),
    runs the rolling median/MAD regression detector per
    ``(benchmark, machine, metric)`` series, and prints a verdict table
    (``--json`` for the ``repro.obs.sentinel`` document, ``--html`` for
    the self-contained trend report).  Exit codes follow ``repro diff``:
    **0** no regression, **2** usage error (disabled/missing history,
    bad window/threshold, unwritable ``--html``), **3** at least one
    series regressed past the threshold.
    """
    import json

    from . import obs

    if args.window < 2:
        print(f"sentinel: --window must be at least 2 (got {args.window})",
              file=sys.stderr)
        return 2
    if args.threshold <= 0:
        print(f"sentinel: --threshold must be positive "
              f"(got {args.threshold})", file=sys.stderr)
        return 2
    history = obs.get_history(args.history)
    if history is None:
        print(f"sentinel: the run-history store is disabled "
              f"(REPRO_HISTORY={os.environ.get('REPRO_HISTORY')!r}, "
              f"REPRO_LEDGER={os.environ.get('REPRO_LEDGER')!r})",
              file=sys.stderr)
        return 2
    if not history.points_path.exists():
        print(f"sentinel: no run history at {history.points_path} "
              f"(runs record it automatically; see docs/OBSERVABILITY.md)",
              file=sys.stderr)
        return 2
    if args.html:
        code = _check_outputs("sentinel", html=args.html)
        if code is not None:
            return code
    config = obs.SentinelConfig(window=args.window,
                                threshold=args.threshold,
                                min_points=args.min_points)
    result = obs.analyze_history(history, config=config,
                                 benchmark=args.benchmark,
                                 machine=args.filter_machine,
                                 metric_glob=args.metric)
    doc = obs.sentinel_document(result)
    if args.html:
        try:
            with open(args.html, "w", encoding="utf-8") as f:
                f.write(obs.render_trend_html(result))
        except OSError as err:
            print(f"sentinel: cannot write --html {args.html}: {err}",
                  file=sys.stderr)
            return 2
        if not args.json:
            print(f"wrote {args.html}")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(obs.format_table(result))
    obs.record_run("sentinel", history=False,
                   series=len(result.entries),
                   regressions=len(result.regressions),
                   exit_code=result.exit_code)
    return result.exit_code


TRACE_LIST_SCHEMA = "repro.obs.trace_list"
TRACE_SHOW_SCHEMA = "repro.obs.trace"
TRACE_DOC_VERSION = 1


def _open_ledger(command: str, directory):
    """Shared `trace ls`/`trace show` ledger resolution (None + msg on 2)."""
    from . import obs

    ledger = obs.get_ledger(directory)
    if ledger is None:
        print(f"{command}: the run ledger is disabled "
              f"(REPRO_LEDGER={os.environ.get('REPRO_LEDGER')!r})",
              file=sys.stderr)
    return ledger


def _age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.0f}d"


def cmd_trace_ls(args) -> int:
    """List recorded traces, newest last-activity first.

    Exit codes: **0** listed (possibly zero traces), **2** the ledger is
    disabled.  With ``--json``, emits a schema-versioned
    ``repro.obs.trace_list`` document.
    """
    import json
    import time as _time

    ledger = _open_ledger("trace ls", args.ledger)
    if ledger is None:
        return 2
    traces = ledger.traces()
    items = sorted(
        ({"trace_id": trace_id, **summary}
         for trace_id, summary in traces.items()),
        key=lambda item: -float(item.get("last_ts", 0.0)))
    if args.last is not None and args.last >= 0:
        items = items[:args.last]
    if args.json:
        print(json.dumps({
            "schema": TRACE_LIST_SCHEMA,
            "v": TRACE_DOC_VERSION,
            "ledger": str(ledger.directory),
            "traces": items,
        }, indent=2, default=repr))
        return 0
    if not items:
        print(f"no traces recorded under {ledger.directory}")
        return 0
    now = _time.time()
    print(f"{'trace':16s} {'rows':>5s} {'age':>5s}  kinds / benchmarks / machines")
    for item in items:
        kinds = ",".join(item.get("kinds") or []) or "-"
        benchmarks = ",".join(item.get("benchmarks") or []) or "-"
        machines = ",".join(item.get("machines") or []) or "-"
        age = _age(max(0.0, now - float(item.get("last_ts", now))))
        print(f"{str(item['trace_id'])[:16]:16s} {item.get('rows', 0):5d} "
              f"{age:>5s}  {kinds} / {benchmarks} / {machines}")
    return 0


def cmd_trace_show(args) -> int:
    """Show one trace: its ledger rows joined with shipped spans/events.

    ``trace_id`` may be a unique prefix.  Exit codes: **0** shown, **1**
    unknown (or ambiguous) trace id, **2** the ledger is disabled.
    """
    import json

    ledger = _open_ledger("trace show", args.ledger)
    if ledger is None:
        return 2
    traces = ledger.traces()
    matches = [tid for tid in traces if tid.startswith(args.trace_id)]
    if not matches:
        print(f"trace show: no trace {args.trace_id!r} in "
              f"{ledger.directory}", file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(f"trace show: {args.trace_id!r} is ambiguous "
              f"({len(matches)} traces match)", file=sys.stderr)
        return 1
    trace_id = matches[0]
    rows = ledger.rows(trace_id=trace_id)

    # Join: merge per-worker span rollups and counters shipped in rows.
    spans: dict = {}
    counters: dict = {}
    events: list = []
    for row in rows:
        worker = row.get("worker")
        tag = f"worker={worker}" if worker is not None else "parent"
        for name, agg in (row.get("spans") or {}).items():
            spans.setdefault(tag, {})[name] = agg
        for series, value in (row.get("counters") or {}).items():
            counters.setdefault(tag, {})[series] = value
        row_events = row.get("events")
        if isinstance(row_events, list):
            events.extend(row_events)
    events.sort(key=lambda e: (e.get("ts") or 0.0))

    if args.json:
        print(json.dumps({
            "schema": TRACE_SHOW_SCHEMA,
            "v": TRACE_DOC_VERSION,
            "trace_id": trace_id,
            "ledger": str(ledger.directory),
            "summary": traces[trace_id],
            "rows": rows,
            "spans": spans,
            "counters": counters,
            "events": events,
        }, indent=2, default=repr))
        return 0

    from . import obs

    summary = traces[trace_id]
    print(f"trace {trace_id}")
    print(f"  rows       {summary.get('rows', len(rows))}")
    print(f"  kinds      {', '.join(summary.get('kinds') or []) or '-'}")
    print(f"  benchmarks {', '.join(summary.get('benchmarks') or []) or '-'}")
    print(f"  machines   {', '.join(summary.get('machines') or []) or '-'}")
    for row in rows:
        worker = row.get("worker")
        who = f" worker={worker}" if worker is not None else ""
        extras = []
        for key in ("benchmark", "machine", "variant", "classification",
                    "status", "crash_bundle"):
            if row.get(key):
                extras.append(f"{key}={row[key]}")
        makespan = row.get("makespan_s")
        if isinstance(makespan, (int, float)):
            extras.append(f"makespan={makespan * 1e3:.2f}ms")
        print(f"  [{row.get('kind', '?')}]{who} " + " ".join(extras))
    for tag in sorted(spans):
        print(f"  spans ({tag}):")
        for name, agg in sorted(spans[tag].items()):
            line = (f"    {name:32s} x{agg.get('count', 0):<6d} "
                    f"{float(agg.get('total_s', 0.0)) * 1e3:10.3f} ms")
            if "self_total_s" in agg:
                line += f"  self {float(agg['self_total_s']) * 1e3:10.3f} ms"
            print(line)
    if events:
        print(f"  events ({len(events)} shipped):")
        shown = obs.format_events(events[-args.events:])
        print("    " + shown.replace("\n", "\n    "))
    return 0


def cmd_top(args) -> int:
    """Live, curses-free dashboard over a running /metrics endpoint."""
    from .obs import run_top

    return run_top(args.url, interval=args.interval,
                   iterations=args.iterations, clear=not args.no_clear,
                   json_mode=args.json)


def cmd_compile(args) -> int:
    """Compile a profiling benchmark into a replayable fractal plan.

    Prints the plan's compile-time statistics (steps, kernel/LFU calls,
    bytes moved) and the cache keys it is stored under.  With ``--verify``
    the plan is replayed against the recursive executor on random inputs
    and the outputs compared bit-for-bit.  Exit codes: **0** ok, **1** a
    ``--verify`` mismatch, **2** unknown benchmark.
    """
    from .core.executor import FractalExecutor
    from .core.store import TensorStore
    from .plan import (compile_cached, fingerprint_digest, machine_fingerprint)
    from .workloads import profile_benchmark, resolve_profile_benchmark

    machine = _machine(args)
    try:
        args.benchmark = resolve_profile_benchmark(args.benchmark)
    except KeyError as err:
        print(f"compile: {err.args[0]}", file=sys.stderr)
        return 2
    w = profile_benchmark(args.benchmark)
    plan = compile_cached(machine, w.program, disk_dir=args.plan_cache)
    stats = plan.stats
    from .obs import record_run
    record_run("compile", benchmark=args.benchmark, machine=machine.name,
               fingerprint=fingerprint_digest(machine_fingerprint(machine))[:16],
               program_digest=plan.signature_digest[:16],
               steps=plan.n_steps, compile_s=plan.compile_seconds)
    print(f"compiled {args.benchmark} on {machine.name}:")
    print(f"  steps               {plan.n_steps:12d} "
          f"({stats.kernel_calls} kernel, {stats.lfu_calls} LFU)")
    print(f"  instructions        "
          f"{sum(stats.instructions_per_level.values()):12d} "
          f"(depth {stats.max_depth_reached})")
    print(f"  fan-outs            {stats.fanouts:12d} "
          f"-> {stats.fanout_parts} parts")
    print(f"  bytes moved         "
          f"{stats.bytes_read + stats.bytes_written:12d}")
    print(f"  externals           {len(plan.externals):12d} tensors")
    print(f"  compile time        {plan.compile_seconds * 1e3:12.2f} ms")
    print(f"  machine fingerprint {fingerprint_digest(machine_fingerprint(machine))[:16]}")
    print(f"  program signature   {plan.signature_digest[:16]}")
    if args.plan_cache:
        print(f"  disk cache          {args.plan_cache}")
    if not args.verify:
        return 0

    rng = np.random.default_rng(args.seed)
    bound = list(w.inputs.values()) + list(w.params.values())
    arrays = {t.uid: rng.normal(size=t.shape) for t in bound}
    # Three-way: recursive execution, classic step-by-step replay, and
    # vectorized (BatchedStep) replay must all agree bit-for-bit.
    modes = (("recursive", None, None), ("replay", plan, False),
             ("batched replay", plan, True))
    results = []
    for mode, use_plan, use_batch in modes:
        store = TensorStore()
        for t in bound:
            store.bind(t, arrays[t.uid])
        FractalExecutor(machine, store).run_program(
            w.program, plan=use_plan, batch=use_batch)
        results.append({name: store.read(t.region())
                        for name, t in w.outputs.items()})
    for (mode, _, _), candidate in zip(modes[1:], results[1:]):
        for name in results[0]:
            if not np.array_equal(results[0][name], candidate[name]):
                print(f"compile: --verify FAILED: output {name!r} differs "
                      f"between recursive execution and {mode}",
                      file=sys.stderr)
                return 1
    schedule = plan.replay_schedule()
    print(f"  verify              replay and batched replay bit-identical "
          f"({len(results[0])} output(s), {schedule.batched_steps} "
          f"batched step(s))")
    return 0


def _plan_externals_from_doc(doc: dict) -> list:
    """Reconstruct a plan document's external tensors from its tensor
    table (entries with ``external >= 0``, in external order)."""
    from .core.tensor import DType, Tensor
    from .plan import PlanFormatError

    n = int(doc["n_externals"])
    externals: list = [None] * n
    for entry in doc["tensors"]:
        ext = int(entry["external"])
        if ext < 0:
            continue
        if ext >= n or externals[ext] is not None:
            raise PlanFormatError(f"bad external index {ext}")
        externals[ext] = Tensor(
            name=str(entry["name"]),
            shape=tuple(int(d) for d in entry["shape"]),
            dtype=DType.from_name(str(entry["dtype"])),
            space=str(entry["space"]))
    if any(t is None for t in externals):
        raise PlanFormatError("tensor table is missing external entries")
    return externals


def cmd_plan_lint(args) -> int:
    """Dataflow-analyze a compiled fractal plan; CI-friendly exit codes.

    The target is either a profiling benchmark name (compiled for
    ``--machine``, through the optional ``--plan-cache``) or a path to a
    serialized plan JSON document.  Exit codes match ``repro lint``:
    **0** clean (warnings allowed unless ``--strict``), **1** P1xx errors
    (any finding with ``--strict``), **2** unknown benchmark or a corrupt
    plan document (including one whose stored analysis products fail
    re-verification).
    """
    import json

    from .analysis import diagnostics_document
    from .plan import (PlanFormatError, analyze_plan, compile_cached,
                       plan_from_doc, verify_plan)

    target = args.target
    path = Path(target)
    if target.endswith(".json") or path.exists():
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"plan-lint: cannot read {target}: {err}", file=sys.stderr)
            return 2
        try:
            if not isinstance(doc, dict):
                raise PlanFormatError(
                    f"plan document is {type(doc).__name__}, expected object")
            plan = plan_from_doc(doc, _plan_externals_from_doc(doc))
            # Stored products must match a fresh analysis of the stored
            # steps -- a mismatch means the file was tampered with or
            # written by an incompatible analyzer: corrupt, exit 2.
            verify_plan(plan)
        except (PlanFormatError, ValueError, KeyError, TypeError) as err:
            print(f"plan-lint: corrupt plan {target}: {err}", file=sys.stderr)
            return 2
        name = target
    else:
        machine = _machine(args)
        from .workloads import profile_benchmark, resolve_profile_benchmark

        try:
            target = resolve_profile_benchmark(target)
        except KeyError as err:
            print(f"plan-lint: {err.args[0]}", file=sys.stderr)
            return 2
        w = profile_benchmark(target)
        plan = compile_cached(machine, w.program, disk_dir=args.plan_cache)
        name = f"{target}@{machine.name}"

    analysis = analyze_plan(plan)
    result = analysis.result
    result.program_name = name
    gating = result.diagnostics if args.strict else result.errors

    # Batching summary: what the vectorization pass lowered, which lanes
    # must take the counted per-lane fallback (no bit-identical stacked
    # kernel for their opcode), and the arena the schedule preallocates.
    # ``--no-batch`` skips schedule construction entirely.
    batching = None
    if not getattr(args, "no_batch", False):
        from .ops.batch import batched_kernel_for

        schedule = plan.replay_schedule()
        fallback_opcodes: dict = {}
        for b in plan.batched:
            if batched_kernel_for(b.opcode) is None:
                fallback_opcodes[b.opcode.value] = (
                    fallback_opcodes.get(b.opcode.value, 0) + b.n_lanes)
        batching = {
            "batched_steps": schedule.batched_steps,
            "batched_lanes": schedule.batched_lanes,
            "batch_fallback_opcodes": fallback_opcodes,
            "arena_bytes": schedule.arena.nbytes,
            "fully_batched": schedule.fully_batched,
        }

    if getattr(args, "json", False):
        doc = diagnostics_document([result], tool="plan-lint")
        doc["plan"] = {
            "steps": plan.n_steps,
            "signature_digest": plan.signature_digest,
            "fusion_groups": len(analysis.fusion_groups),
            "fused_steps": analysis.fused_steps,
            "safe_zero_copy_steps": analysis.n_safe_zero_copy,
            "peak_live_bytes": analysis.peak_live_bytes,
        }
        if batching is not None:
            doc["plan"].update(batching)
        print(json.dumps(doc, indent=2))
        return 1 if gating else 0

    for d in result.diagnostics:
        print(d.format())
    print(f"{name}: {len(result.errors)} error(s), "
          f"{len(result.warnings)} warning(s) in {plan.n_steps} step(s)")
    print(f"  fusion groups       {len(analysis.fusion_groups):12d} "
          f"covering {analysis.fused_steps}/{plan.n_steps} steps")
    print(f"  safe zero-copy      {analysis.n_safe_zero_copy:12d}"
          f"/{plan.n_steps} steps")
    print(f"  peak live bytes     {analysis.peak_live_bytes:12d}")
    if batching is not None:
        print(f"  batched steps       {batching['batched_steps']:12d} "
              f"covering {batching['batched_lanes']}/{plan.n_steps} steps")
        print(f"  arena bytes         {batching['arena_bytes']:12d}")
        if batching["batch_fallback_opcodes"]:
            folded = ", ".join(
                f"{op} ({lanes} lanes)" for op, lanes in
                sorted(batching["batch_fallback_opcodes"].items()))
            print(f"  per-lane fallbacks  {folded}")
            print("  default engine      classic replay (fallback lanes "
                  "present; batch=True forces the schedule)")
    return 1 if gating else 0


def cmd_run(args) -> int:
    from .core.executor import FractalExecutor
    from .core.store import TensorStore
    from .frontend import assemble

    machine = _machine(args)
    with open(args.source, encoding="utf-8") as f:
        w = assemble(f.read(), name=args.source)
    plan = None
    if getattr(args, "plan_cache", None) or getattr(args, "repeat", 1) > 1:
        from .plan import compile_cached

        plan = compile_cached(machine, w.program,
                              disk_dir=getattr(args, "plan_cache", None))
    rng = np.random.default_rng(args.seed)
    repeats = max(1, int(getattr(args, "repeat", 1)))
    for _ in range(repeats):
        store = TensorStore()
        for t in w.inputs.values():
            store.bind(t, rng.normal(size=t.shape))
        executor = FractalExecutor(machine, store)
        executor.run_program(w.program, plan=plan)
    from .analysis.signatures import program_digest
    from .obs import record_run
    record_run("run", benchmark=args.source, machine=machine.name,
               program_digest=program_digest(w.program)[:16],
               repeats=repeats, kernel_calls=executor.stats.kernel_calls,
               replayed=plan is not None)
    print(f"ran {len(w.program)} instructions on {machine.name} "
          f"({executor.stats.kernel_calls} leaf kernels"
          + (f", {repeats} repeats, replayed plan" if plan is not None else "")
          + ")")
    for name, t in w.outputs.items():
        arr = store.read(t.region())
        print(f"  {name}: shape {arr.shape}, "
              f"mean {arr.mean():.4g}, max {arr.max():.4g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cambricon-F reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("specs", help="Table-6 instance specifications") \
        .set_defaults(fn=cmd_specs)

    p = sub.add_parser("simulate", help="simulate a paper benchmark")
    _add_machine_args(p)
    _add_obs_args(p)
    p.add_argument("-b", "--benchmark", required=True)
    p.add_argument("--json", action="store_true",
                   help="emit the RunReport JSON instead of human text")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("timeline", help="ASCII execution timeline (Fig 13)")
    _add_machine_args(p)
    p.add_argument("-b", "--benchmark", required=True)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--json", action="store_true",
                   help="emit the RunReport JSON instead of human text")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("verify", help="differentially verify the benchmark "
                                      "suite (fractal vs reference kernels)")
    _add_machine_args(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("cost", help="silicon cost breakdown per level")
    _add_machine_args(p)
    p.set_defaults(fn=cmd_cost)

    p = sub.add_parser("trace", help="write a Chrome/Perfetto trace, or "
                                     "query the run ledger (trace ls/show)")
    _add_machine_args(p)
    p.add_argument("-b", "--benchmark")
    p.add_argument("-o", "--out", default="trace.json")
    p.add_argument("--depth", type=int, default=2)
    p.set_defaults(fn=cmd_trace)
    trace_sub = p.add_subparsers(dest="trace_command")
    p = trace_sub.add_parser("ls", help="list recorded traces from the run "
                                        "ledger, newest first")
    p.add_argument("--ledger", metavar="DIR",
                   help="ledger directory (default $REPRO_LEDGER or "
                        "~/.cache/repro/ledger)")
    p.add_argument("-n", "--last", type=int,
                   help="only the newest N traces")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.obs.trace_list JSON document")
    p.set_defaults(fn=cmd_trace_ls)
    p = trace_sub.add_parser("show", help="show one trace: ledger rows "
                                          "joined with shipped spans/events")
    p.add_argument("trace_id", help="full trace id or a unique prefix")
    p.add_argument("--ledger", metavar="DIR",
                   help="ledger directory (default $REPRO_LEDGER or "
                        "~/.cache/repro/ledger)")
    p.add_argument("--events", type=int, default=20, metavar="N",
                   help="newest shipped events to print (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.obs.trace JSON document")
    p.set_defaults(fn=cmd_trace_show)

    p = sub.add_parser("figures", help="render every figure as SVG")
    p.add_argument("-o", "--out", default="figures")
    p.set_defaults(fn=cmd_figures)

    sub.add_parser("dse", help="Table-4 hierarchy sweep (costs)") \
        .set_defaults(fn=cmd_dse)

    p = sub.add_parser("assemble", help="FISA text -> binary")
    p.add_argument("source")
    p.add_argument("-o", "--out")
    p.set_defaults(fn=cmd_assemble)

    p = sub.add_parser("disasm", help="FISA binary -> text")
    p.add_argument("binary")
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("lint", help="statically analyze FISA programs "
                                    "(shape/dtype, def-use, hazards)")
    p.add_argument("sources", nargs="+",
                   help="one or more .fisa source files")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors for the exit code")
    p.add_argument("--json", action="store_true",
                   help="emit the schema-versioned repro.diag diagnostics "
                        "document instead of human text")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("plan-lint",
                       help="dataflow-analyze a compiled fractal plan "
                            "(P1xx races, dead steps, fusion legality)")
    _add_machine_args(p)
    p.add_argument("target",
                   help="profiling benchmark name (e.g. mm_fc, same names "
                        "as `repro profile`) or a serialized plan JSON file")
    p.add_argument("--plan-cache", metavar="DIR",
                   help="compile through the on-disk plan cache under DIR")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors for the exit code")
    p.add_argument("--json", action="store_true",
                   help="emit the schema-versioned repro.diag diagnostics "
                        "document (plus a plan summary section)")
    p.add_argument("--no-batch", action="store_true",
                   help="skip the batching summary (BatchedStep lowering, "
                        "per-lane fallbacks, arena size)")
    p.set_defaults(fn=cmd_plan_lint)

    p = sub.add_parser("profile", help="run + simulate a benchmark with "
                                       "telemetry; write a RunReport JSON")
    _add_machine_args(p)
    p.add_argument("benchmark",
                   help="profiling subject (e.g. mm_fc, matmul, VGG-16 "
                        "miniature) -- see docs/TELEMETRY.md")
    p.add_argument("-o", "--out",
                   help="RunReport path (default runreport_<benchmark>.json)")
    p.add_argument("--trace",
                   help="also write a merged Perfetto trace (functional "
                        "spans + simulator timeline)")
    p.add_argument("--spans", help="also export the raw span stream as JSONL")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="print the RunReport JSON instead of the summary")
    _add_obs_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("serve-metrics",
                       help="run a workload under a live /metrics + "
                            "/healthz + /events endpoint")
    _add_machine_args(p)
    p.add_argument("benchmark",
                   help="profiling subject (e.g. mm_fc) -- same registry "
                        "as `repro profile`")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port on 127.0.0.1 (0 = ephemeral; default 8000)")
    p.add_argument("--iterations", type=int, default=1,
                   help="functional+simulator passes to run (default 1)")
    p.add_argument("--hold", action="store_true",
                   help="keep serving after the last iteration until Ctrl-C")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events", metavar="PATH",
                   help="stream the structured event log to PATH as JSONL")
    p.add_argument("--events-max-bytes", type=int, default=16 * 2**20,
                   metavar="N",
                   help="roll the --events sink to PATH.1 past N bytes "
                        "(default 16 MiB; 0 = unbounded)")
    p.add_argument("--crash-dir", metavar="DIR",
                   help="dump a crash bundle under DIR on an uncaught "
                        "exception")
    p.add_argument("--stall-after", type=float, default=30.0, metavar="S",
                   help="stall watchdog budget in seconds (default 30)")
    p.add_argument("--slo", action="append", metavar="RULE", default=None,
                   help="arm a live SLO rule, e.g. "
                        "'sim.sig_cache.hits > 100 for 5s as warm-cache' "
                        "(repeatable; fires alert events, the "
                        "repro_alerts_active gauge and /alerts; "
                        "syntax in docs/OBSERVABILITY.md)")
    p.set_defaults(fn=cmd_serve_metrics)

    p = sub.add_parser("events", help="structured event log tooling")
    events_sub = p.add_subparsers(dest="events_command", required=True)
    p = events_sub.add_parser(
        "tail", help="filter and pretty-print an events.jsonl file or a "
                     "crash-bundle directory")
    p.add_argument("target",
                   help="events.jsonl path or crash-bundle directory")
    p.add_argument("-s", "--subsystem",
                   help="only events from this subsystem (executor, sim, "
                        "runtime, ops, decompose)")
    p.add_argument("--severity", choices=("debug", "info", "warn", "error"),
                   help="minimum severity to show")
    p.add_argument("-e", "--event", metavar="GLOB",
                   help="event-name glob, e.g. 'instruction.*'")
    p.add_argument("-n", "--last", type=int,
                   help="only the newest N matching events")
    p.add_argument("--json", action="store_true",
                   help="re-emit matching records as JSONL instead of "
                        "pretty text")
    p.add_argument("-f", "--follow", action="store_true",
                   help="after the initial tail, keep polling the file and "
                        "print records as they are appended (Ctrl-C exits)")
    p.add_argument("--poll", type=float, default=0.5, metavar="S",
                   help="--follow poll interval in seconds (default 0.5)")
    p.add_argument("--follow-max", type=int, help=argparse.SUPPRESS)
    p.add_argument("-g", "--grep", metavar="PATTERN",
                   help="regex filter over the event name and rendered "
                        "fields (composes with --severity/--follow)")
    p.add_argument("--since", metavar="WHEN",
                   help="only events at or after WHEN -- an ISO-8601 "
                        "timestamp (2026-08-08T12:00:00) or epoch seconds; "
                        "composes with every other filter (triaging alert "
                        "windows)")
    p.set_defaults(fn=cmd_events_tail)

    p = sub.add_parser("top", help="live terminal dashboard over a running "
                                   "/metrics endpoint (see serve-metrics)")
    p.add_argument("url", nargs="?", default="127.0.0.1:8000",
                   help="metrics endpoint, host:port or full URL "
                        "(default 127.0.0.1:8000)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh interval in seconds (default 2)")
    p.add_argument("--iterations", type=int, metavar="N",
                   help="exit after N refreshes (default: run until Ctrl-C)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen "
                        "(useful for piping)")
    p.add_argument("--json", action="store_true",
                   help="emit one repro.obs.top JSON object per frame "
                        "instead of the ANSI dashboard "
                        "(--json --iterations 1 for a one-shot scrape)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("diff", help="compare two RunReport JSON documents; "
                                    "exit 3 on gated regression")
    p.add_argument("baseline", help="baseline RunReport JSON")
    p.add_argument("candidate", help="candidate RunReport JSON")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="relative change gated metrics may slip "
                        "(default 0.05 = 5%%)")
    p.add_argument("--gate-spans", action="store_true",
                   help="also gate wall-clock span rollups (nondeterministic; "
                        "off by default)")
    p.add_argument("--limit", type=int, default=20,
                   help="rows per table section (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable diff instead of the table")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("sentinel",
                       help="statistical perf-trend verdict over the run "
                            "history; exit 3 on regression")
    p.add_argument("--history", metavar="DIR",
                   help="run-history directory (default $REPRO_HISTORY, "
                        "else the run-ledger directory)")
    p.add_argument("--window", type=int, default=10, metavar="N",
                   help="rolling baseline size in points (default 10)")
    p.add_argument("--threshold", type=float, default=3.0, metavar="Z",
                   help="robust z-score past which a bad-direction move "
                        "is a regression (default 3.0)")
    p.add_argument("--min-points", type=int, default=5, metavar="N",
                   help="baseline points required before verdicts "
                        "(shorter series report warmup; default 5)")
    p.add_argument("-b", "--benchmark",
                   help="only series of this benchmark")
    p.add_argument("--filter-machine", metavar="MACHINE",
                   help="only series of this machine name")
    p.add_argument("--metric", metavar="GLOB",
                   help="metric-name glob, e.g. 'makespan_s' or '*_rate'")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.obs.sentinel document instead of "
                        "the table")
    p.add_argument("--html", metavar="OUT",
                   help="also write a self-contained HTML trend report "
                        "with per-metric sparklines")
    p.set_defaults(fn=cmd_sentinel)

    p = sub.add_parser("flame", help="sampling-profile a benchmark; write "
                                     "a profile JSON and flamegraph")
    _add_machine_args(p)
    p.add_argument("benchmark",
                   help="profiling subject (e.g. mm_fc) -- same names as "
                        "`repro profile`")
    p.add_argument("--hz", type=float, default=200.0,
                   help="sampling rate in Hz (default 200)")
    p.add_argument("-o", "--out",
                   help="profile doc path (default profile_<benchmark>.json)")
    p.add_argument("--html", metavar="OUT",
                   help="also write a self-contained HTML flamegraph")
    p.add_argument("--duration", type=float, default=1.0, metavar="S",
                   help="keep re-running the benchmark for about S seconds "
                        "(default 1.0)")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="run exactly N passes instead of --duration")
    p.add_argument("--limit", type=int, default=15,
                   help="rows in the printed top table (default 15)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="print the repro.obs.profile document instead of "
                        "the summary")
    p.set_defaults(fn=cmd_flame)

    p = sub.add_parser("flame-diff", help="diff two recorded profiles; "
                                          "exit 3 on attribution regression")
    p.add_argument("baseline", help="baseline repro.obs.profile JSON")
    p.add_argument("candidate", help="candidate repro.obs.profile JSON")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="absolute share growth that gates, in fractions "
                        "of total samples (default 0.05 = 5 points)")
    p.add_argument("--limit", type=int, default=20,
                   help="rows in the printed table (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.obs.profile_diff document instead "
                        "of the table")
    p.set_defaults(fn=cmd_flame_diff)

    p = sub.add_parser("compile", help="compile a benchmark into a "
                                       "replayable fractal plan")
    _add_machine_args(p)
    p.add_argument("benchmark",
                   help="profiling subject (e.g. mm_fc) -- same names as "
                        "`repro profile`")
    p.add_argument("--plan-cache", metavar="DIR",
                   help="persist the compiled plan under DIR (versioned "
                        "JSON; see docs/PERFORMANCE.md)")
    p.add_argument("--verify", action="store_true",
                   help="replay the plan against recursive execution and "
                        "compare outputs bit-for-bit")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="assemble and execute a FISA program")
    _add_machine_args(p)
    p.add_argument("source")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plan-cache", metavar="DIR",
                   help="compile through the on-disk plan cache and replay "
                        "the plan instead of recursing")
    p.add_argument("--repeat", type=int, default=1,
                   help="execute the program N times (compiles once and "
                        "replays when N > 1; default 1)")
    p.set_defaults(fn=cmd_run)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs.trace import ensure_trace
    with ensure_trace(command=args.command):
        try:
            return args.fn(args)
        except SystemExit as exc:  # usage errors raised mid-command
            return exc.code if isinstance(exc.code, int) else 2


if __name__ == "__main__":
    raise SystemExit(main())
