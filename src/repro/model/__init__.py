"""Analytic performance models: the roofline (Fig 15), Memory-Bounded
Operational Intensity (Fig 10, Section 3.6), and the GPU baselines."""

from .gpu import DGX1, GTX1080TI, GPUModel, gpu_attained
from .mboi import (
    MBOI_BYTES_PER_ELEM,
    average_mboi,
    mboi_inverse,
    measured_mboi,
    theoretical_mboi,
)
from .roofline import RooflinePoint, attainable, ridge_point, roofline_table

__all__ = [
    "DGX1",
    "GTX1080TI",
    "GPUModel",
    "gpu_attained",
    "MBOI_BYTES_PER_ELEM",
    "average_mboi",
    "mboi_inverse",
    "measured_mboi",
    "theoretical_mboi",
    "RooflinePoint",
    "attainable",
    "ridge_point",
    "roofline_table",
]
