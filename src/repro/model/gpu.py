"""GPU baseline models: GTX 1080Ti and DGX-1 (paper Section 5/6).

The paper measured these testbeds with nvprof under TensorFlow 1.9 +
TensorRT 4; we have no GPUs, so the baselines are roofline-style analytic
models whose per-benchmark parameters are derived from the paper's own
reported observations (the substitution table in DESIGN.md):

* each GPU has a peak throughput and a *root* memory bandwidth -- graphics
  memory for the single card, the measured 84.24 GB/s host-to-device link
  for the eight-GPU DGX-1 (the paper plots DGX-1's roofline against that
  root bandwidth, which is why its ridge point sits so far right);
* each benchmark carries an achieved operational intensity (bounded by the
  96 KB shared memory per SM -- the paper's explanation for the 1080Ti's
  bounded intensity -- or boosted by TF/TensorRT keeping data resident in
  HBM for the DGX-1, "up to 85x higher" on ML tasks);
* attained performance = min(peak x efficiency, OI x root bandwidth), with
  efficiency reflecting how well the kernel mix keeps the SMs busy
  (control-flow-heavy K-Means/LVQ collapse, dense GEMM does well).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

GB = 1 << 30


@dataclass(frozen=True)
class BenchmarkProfile:
    """Per-benchmark GPU behaviour.

    ``oi`` is the achieved operational intensity against the GPU's root
    memory (ops/byte); ``efficiency`` is the fraction of peak the kernel mix
    sustains when not bandwidth-bound.
    """

    oi: float
    efficiency: float


@dataclass(frozen=True)
class GPUModel:
    """A GPU system as the paper's evaluation sees it."""

    name: str
    peak_ops: float
    root_bandwidth: float  # bytes/s of the roofline's bandwidth roof
    sm_local_bytes: int  # per-SM programmer-managed storage
    measured_power: float  # paper-reported average benchmark power (W)
    profiles: Mapping[str, BenchmarkProfile]

    def attained(self, benchmark: str) -> float:
        """Modelled attained ops/s for one of the seven benchmarks."""
        try:
            prof = self.profiles[benchmark]
        except KeyError:
            raise KeyError(
                f"{self.name} has no profile for {benchmark!r}; "
                f"one of {sorted(self.profiles)}")
        return min(self.peak_ops * prof.efficiency,
                   prof.oi * self.root_bandwidth)

    def operational_intensity(self, benchmark: str) -> float:
        return self.profiles[benchmark].oi


# ---------------------------------------------------------------------------
# GTX 1080Ti (Fig 15a baseline)
# ---------------------------------------------------------------------------
#
# 10.6 Tops peak, 484 GB/s GDDR5X.  Shared memory is 96 KB per SM, which
# bounds tiling depth: a balanced GEMM tile of sqrt(96K/6) ~ 126 elements
# gives OI on the order of a hundred ops/byte.  Efficiencies reflect
# commonly observed TensorRT/cuBLAS utilization for each kernel class; the
# iterative ML codes are dominated by kernel-launch and control overhead
# (the paper: "GPU suffers from the control flow ... showing an even worse
# performance" on K-MEANS and LVQ).

GTX1080TI = GPUModel(
    name="GTX-1080Ti",
    peak_ops=10.6e12,
    root_bandwidth=484 * GB,
    sm_local_bytes=96 << 10,
    measured_power=199.9,
    profiles={
        "VGG-16": BenchmarkProfile(oi=95.0, efficiency=0.60),
        "ResNet-152": BenchmarkProfile(oi=60.0, efficiency=0.45),
        "K-NN": BenchmarkProfile(oi=70.0, efficiency=0.30),
        "K-Means": BenchmarkProfile(oi=25.0, efficiency=0.08),
        "LVQ": BenchmarkProfile(oi=0.35, efficiency=0.0005),
        "SVM": BenchmarkProfile(oi=80.0, efficiency=0.35),
        "MATMUL": BenchmarkProfile(oi=126.0, efficiency=0.80),
    },
)

# ---------------------------------------------------------------------------
# DGX-1 (Fig 15b baseline)
# ---------------------------------------------------------------------------
#
# Eight V100-SXM2, 125 Tops each (1000 Tops aggregate); the measured
# host-to-device bandwidth is 84.24 GB/s, the root of its roofline.
# TF + TensorRT keep working sets in HBM across kernels, so deep-learning
# OI against the root link is enormous ("up to 85x higher operation
# intensity when compared [to] Cambricon-F100" on ML tasks); what limits
# DGX-1 instead is the gap "between graphic memories and chips" and the
# smaller best batch size, folded into the efficiency terms.

DGX1 = GPUModel(
    name="DGX-1",
    peak_ops=1000e12,
    root_bandwidth=84.24 * GB,
    sm_local_bytes=96 << 10,
    measured_power=1986.5,
    profiles={
        "VGG-16": BenchmarkProfile(oi=593.0, efficiency=0.30),
        "ResNet-152": BenchmarkProfile(oi=167.0, efficiency=0.20),
        "K-NN": BenchmarkProfile(oi=11_600.0, efficiency=0.00464),
        "K-Means": BenchmarkProfile(oi=8_500.0, efficiency=0.00233),
        "LVQ": BenchmarkProfile(oi=1_200.0, efficiency=0.000431),
        "SVM": BenchmarkProfile(oi=20_000.0, efficiency=0.0436),
        "MATMUL": BenchmarkProfile(oi=9_500.0, efficiency=0.434),
    },
)

ALL_GPUS: Dict[str, GPUModel] = {g.name: g for g in (GTX1080TI, DGX1)}


def gpu_attained(gpu: str, benchmark: str) -> float:
    """Attained ops/s of a named GPU on a named benchmark."""
    return ALL_GPUS[gpu].attained(benchmark)
