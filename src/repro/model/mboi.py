"""Memory-Bounded Operational Intensity (paper Section 3.6, Fig 10).

MBOI(M) answers: given a node with local memory of M bytes, what
operational intensity (ops per byte of parent traffic) can an algorithm
sustain?  The paper uses MBOI to size each node's memory:

    Peak Performance / Bandwidth ~= MBOI_ref(M)
    =>  M ~= MBOI_ref^-1(Peak Performance / Bandwidth)

Two estimates are provided, mirroring Fig 10's "measured" and
"theoretical" curves:

* :func:`theoretical_mboi` -- closed forms from tiling analysis
  (e.g. a balanced MatMul tile of side s = sqrt(M / 3e) gives OI = s / 3);
* :func:`measured_mboi` -- run the actual sequential decomposer at capacity
  M and count the traffic its steps generate (with the two-step TTT reuse
  window), exactly what a Cambricon-F node would do.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.decomposition import shrink_sequential
from ..core.isa import Instruction, Opcode
from ..core.tensor import FP16, Tensor

#: element size used throughout the sizing analysis (fp16)
MBOI_BYTES_PER_ELEM = FP16.itemsize


# ---------------------------------------------------------------------------
# Theoretical closed forms
# ---------------------------------------------------------------------------


def _theory_matmul(m_bytes: float) -> float:
    """Balanced s x s x s tile: 3 s^2 e bytes resident, 2 s^3 ops, and
    2 s^2 e bytes of fresh traffic per tile step (the third operand is the
    accumulating output, kept local) -> OI = s."""
    s = math.sqrt(m_bytes / (3 * MBOI_BYTES_PER_ELEM))
    return max(s, 1.0)


def _theory_conv(m_bytes: float, kernel: int = 3, cin: int = 64) -> float:
    """Convolution tile: weights resident, activations streamed once;
    each input element is reused kernel^2 * (cout tile) times where the
    output-channel tile grows with memory."""
    cout_tile = max(1.0, m_bytes / (2 * kernel * kernel * cin * MBOI_BYTES_PER_ELEM))
    cout_tile = min(cout_tile, 512.0)
    # ops per input byte: 2 * k^2 * cout_tile ops per cin element loaded
    return 2 * kernel * kernel * min(cout_tile, cin) / MBOI_BYTES_PER_ELEM


def _theory_pool(m_bytes: float, kernel: int = 2) -> float:
    """Pooling touches each input element once regardless of memory:
    OI is a small constant (k^2 ops per k^2 elements loaded)."""
    return 1.0 / MBOI_BYTES_PER_ELEM


_THEORY: Dict[str, Callable[[float], float]] = {
    "MatMul": _theory_matmul,
    "Conv2D": _theory_conv,
    "Pool2D": _theory_pool,
}


def theoretical_mboi(algorithm: str, m_bytes: float) -> float:
    """Closed-form MBOI for one of {'MatMul', 'Conv2D', 'Pool2D'}."""
    try:
        return _THEORY[algorithm](m_bytes)
    except KeyError:
        raise KeyError(f"unknown algorithm {algorithm!r}; one of {sorted(_THEORY)}")


# ---------------------------------------------------------------------------
# Measured MBOI: run the real sequential decomposer and count traffic
# ---------------------------------------------------------------------------


def _probe_matmul(order: int = 4096) -> Instruction:
    a = Tensor("mboi.A", (order, order))
    b = Tensor("mboi.B", (order, order))
    c = Tensor("mboi.C", (order, order))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def _probe_conv(batch: int = 32, size: int = 56, cin: int = 64, cout: int = 256) -> Instruction:
    x = Tensor("mboi.x", (batch, size, size, cin))
    w = Tensor("mboi.w", (3, 3, cin, cout))
    out = Tensor("mboi.o", (batch, size - 2, size - 2, cout))
    return Instruction(Opcode.CV2D, (x.region(), w.region()), (out.region(),),
                       {"stride": 1})


def _probe_pool(batch: int = 32, size: int = 112, c: int = 128) -> Instruction:
    x = Tensor("mboi.x", (batch, size, size, c))
    out = Tensor("mboi.o", (batch, size // 2, size // 2, c))
    return Instruction(Opcode.MAX2D, (x.region(),), (out.region(),),
                       {"kh": 2, "kw": 2, "sh": 2, "sw": 2})


_PROBES: Dict[str, Callable[[], Instruction]] = {
    "MatMul": _probe_matmul,
    "Conv2D": _probe_conv,
    "Pool2D": _probe_pool,
}


def measured_mboi(algorithm: str, m_bytes: int, probe: Optional[Instruction] = None) -> float:
    """MBOI obtained by running SD at capacity ``m_bytes`` and counting the
    parent traffic of the resulting step sequence.

    Reuse model matches the node: an operand loaded in the last two steps
    is still resident (two-bank TTT); accumulation chains keep the running
    sum local and write back once.
    """
    if probe is None:
        probe = _PROBES[algorithm]()
    steps = shrink_sequential(probe, m_bytes)
    window: List[frozenset] = []
    traffic = 0
    work = 0
    for step in steps:
        work += step.work()
        recent = frozenset().union(*window) if window else frozenset()
        keys = set()
        for r in step.inputs:
            if r.key() in recent or r.key() in keys:
                continue
            keys.add(r.key())
            traffic += r.nbytes
        acc_local = bool(step.attrs.get("acc_local_out"))
        acc = bool(step.attrs.get("accumulate"))
        for r in step.outputs:
            keys.add(r.key())
            if acc and r.key() not in recent:
                traffic += r.nbytes  # fetch the prior partial sum
            if not acc_local:
                traffic += r.nbytes  # write-back when the chain closes
        window.append(frozenset(keys))
        if len(window) > 2:
            window.pop(0)
    return work / traffic if traffic else float("inf")


def mboi_curve(
    algorithm: str, mem_sizes: Iterable[int]
) -> List[Tuple[int, float, float]]:
    """(M, measured, theoretical) triples for the Fig-10 curves."""
    out = []
    for m in mem_sizes:
        out.append((m, measured_mboi(algorithm, m), theoretical_mboi(algorithm, m)))
    return out


def average_mboi(m_bytes: int, algorithms: Iterable[str] = ("MatMul", "Conv2D", "Pool2D")) -> float:
    """Geometric-mean MBOI across algorithms -- the paper's MBOI_ref."""
    vals = [measured_mboi(a, m_bytes) for a in algorithms]
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


def mboi_inverse(
    target_oi: float,
    algorithm: str = "MatMul",
    lo: int = 1 << 12,
    hi: int = 1 << 34,
) -> int:
    """MBOI^-1: the smallest memory size achieving ``target_oi`` (binary
    search over the monotone theoretical curve)."""
    fn = _THEORY[algorithm]
    if fn(hi) < target_oi:
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        if fn(mid) >= target_oi:
            hi = mid
        else:
            lo = mid + 1
    return lo
