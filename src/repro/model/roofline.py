"""The Roofline model (Williams et al., used throughout the paper's
Section 6 / Fig 15 to show efficiency and bottlenecks).

Attainable performance = min(peak, operational intensity x bandwidth); the
*ridge point* peak/bandwidth is the intensity beyond which a system is
compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position under a roofline."""

    name: str
    operational_intensity: float  # ops / byte of root-memory traffic
    attained_ops: float  # ops / second actually achieved

    def bound(self, peak_ops: float, bandwidth: float) -> str:
        """Whether the roofline says this point is memory- or compute-bound."""
        ridge = ridge_point(peak_ops, bandwidth)
        return "compute" if self.operational_intensity >= ridge else "memory"

    def efficiency(self, peak_ops: float, bandwidth: float) -> float:
        """Attained performance as a fraction of the roofline ceiling."""
        ceiling = attainable(self.operational_intensity, peak_ops, bandwidth)
        return self.attained_ops / ceiling if ceiling else 0.0


def attainable(oi: float, peak_ops: float, bandwidth: float) -> float:
    """The roofline ceiling at operational intensity ``oi``."""
    return min(peak_ops, oi * bandwidth)


def ridge_point(peak_ops: float, bandwidth: float) -> float:
    """Operational intensity where the bandwidth roof meets the compute roof."""
    return peak_ops / bandwidth if bandwidth else float("inf")


def roofline_table(
    points: Iterable[RooflinePoint], peak_ops: float, bandwidth: float
) -> List[str]:
    """Formatted rows describing each point's position under the roofline."""
    rows = [f"{'benchmark':12s} {'OI(ops/B)':>10s} {'attained':>12s} "
            f"{'of peak':>8s} {'bound':>8s}"]
    for p in sorted(points, key=lambda x: x.operational_intensity):
        rows.append(
            f"{p.name:12s} {p.operational_intensity:10.1f} "
            f"{p.attained_ops / 1e12:10.2f} T {p.attained_ops / peak_ops:8.1%} "
            f"{p.bound(peak_ops, bandwidth):>8s}"
        )
    rows.append(f"{'(ridge point: ' + format(ridge_point(peak_ops, bandwidth), '.1f') + ' ops/B)':>40s}")
    return rows
