"""Host runtime: the programmer's side of the Cambricon-F contract.

The paper's execution model puts the programmer "beyond the top level
node", acting as one more controller: bulk arithmetic goes to the machine
as FISA instructions, control flow (argmins, convergence checks, loops)
stays on the host.  This package provides that runtime plus complete
machine-learning applications built on it -- the k-NN, k-means, LVQ and
SVM the paper benchmarks, as *working algorithms* rather than instruction
traces.
"""

from .host import HostRuntime
from .algorithms import KMeans, KNNClassifier, LVQClassifier, RBFSVMClassifier
from .session import InferenceSession

__all__ = [
    "HostRuntime",
    "KMeans",
    "KNNClassifier",
    "LVQClassifier",
    "RBFSVMClassifier",
    "InferenceSession",
]
