"""Inference sessions: run a compiled Workload like a model.

Wraps a :class:`~repro.workloads.builder.Workload` (hand-built, assembled,
or lowered from the graph compiler) with parameter management and a
call-style API -- the last piece of the user-facing stack:

    session = InferenceSession(lower(graph), machine=cambricon_f1())
    session.initialize_parameters(seed=0)      # or load_parameters({...})
    logits = session(img=batch)["fc3"]
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from .. import obs, telemetry
from ..core.executor import FractalExecutor
from ..core.machine import Machine, cambricon_f1
from ..core.store import TensorStore
from ..workloads.builder import Workload


class InferenceSession:
    """Executes one Workload repeatedly with persistent parameters."""

    def __init__(self, workload: Workload, machine: Optional[Machine] = None):
        self.workload = workload
        self.machine = machine if machine is not None else cambricon_f1()
        self._params: Dict[str, np.ndarray] = {}
        #: compiled fractal plan (see :meth:`compile`); ``None`` until the
        #: session is compiled, after which every call replays it.
        self._plan = None

    # -- compilation ----------------------------------------------------------

    def compile(self, plan_cache_dir=None):
        """Compile the workload once; subsequent calls replay the plan.

        Walks the fractal decomposition a single time (through the
        signature-keyed plan cache, so structurally identical sessions
        share the work; ``plan_cache_dir`` additionally persists plans on
        disk) and pins the resulting :class:`repro.plan.FractalPlan` on the
        session.  Replayed calls are bit-identical to recursive execution
        -- see docs/PERFORMANCE.md for the measured speedups.
        """
        from ..plan import compile_cached

        self._plan = compile_cached(self.machine, self.workload.program,
                                    disk_dir=plan_cache_dir)
        return self._plan

    @property
    def plan(self):
        """The compiled plan, or ``None`` while the session is uncompiled."""
        return self._plan

    # -- parameters -----------------------------------------------------------

    def initialize_parameters(self, seed: int = 0, scale: float = 0.1) -> None:
        """He-style random initialization of every parameter tensor."""
        rng = np.random.default_rng(seed)
        for name, t in self.workload.params.items():
            fan_in = max(1, int(np.prod(t.shape[:-1])))
            std = scale * (2.0 / fan_in) ** 0.5
            self._params[name] = std * rng.normal(size=t.shape)

    def load_parameters(self, values: Mapping[str, np.ndarray]) -> None:
        """Load parameters by tensor name (shapes are validated)."""
        for name, array in values.items():
            if name not in self.workload.params:
                raise KeyError(f"unknown parameter {name!r}")
            expected = self.workload.params[name].shape
            array = np.asarray(array, float)
            if array.shape != expected:
                raise ValueError(
                    f"{name}: expected shape {expected}, got {array.shape}")
            self._params[name] = array

    @property
    def parameter_names(self):
        return sorted(self.workload.params)

    # -- execution --------------------------------------------------------------

    def _input_by_short_name(self) -> Dict[str, str]:
        out = {}
        for full in self.workload.inputs:
            short = full.split(".")[-1]
            # builder suffixes names with a counter: img0, x3 ...
            out[short] = full
            out[short.rstrip("0123456789")] = full
        return out

    def __call__(self, **inputs: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the workload; returns {output short name: array}."""
        if not self._params and self.workload.params:
            raise RuntimeError(
                "parameters not set: call initialize_parameters() or "
                "load_parameters() first")
        store = TensorStore()
        short_map = self._input_by_short_name()
        bound = set()
        for short, array in inputs.items():
            full = short_map.get(short)
            if full is None:
                raise KeyError(f"unknown input {short!r}; "
                               f"one of {sorted(short_map)}")
            tensor = self.workload.inputs[full]
            array = np.asarray(array, float)
            if array.shape != tensor.shape:
                raise ValueError(f"{short}: expected shape {tensor.shape}, "
                                 f"got {array.shape}")
            store.bind(tensor, array)
            bound.add(full)
        missing = set(self.workload.inputs) - bound
        if missing:
            raise ValueError(f"missing inputs: {sorted(missing)}")
        for name, t in self.workload.params.items():
            store.bind(t, self._params[name])
        with telemetry.span("session.call", cat="session",
                            workload=self.workload.name,
                            machine=self.machine.name), \
                obs.event_context(workload=self.workload.name,
                                  machine=self.machine.name):
            obs.logger("runtime").info("session.call",
                                       workload=self.workload.name,
                                       machine=self.machine.name,
                                       inputs=sorted(inputs),
                                       compiled=self._plan is not None)
            FractalExecutor(self.machine, store).run_program(
                self.workload.program, plan=self._plan)
        return {
            full.split(".")[-1]: store.read(t.region())
            for full, t in self.workload.outputs.items()
        }
