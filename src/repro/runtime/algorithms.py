"""Complete machine-learning algorithms on the host runtime.

These are the four classic techniques the paper benchmarks, written the
way a Cambricon-F user would write them: FISA instructions for every bulk
operation, host Python for selection and convergence -- and therefore
portable across every machine instance without modification.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .host import HostRuntime


class KNNClassifier:
    """k-nearest-neighbour classification (the Fig-11 driving example).

    Distances are FISA ``Euclidian1D``; the per-query threshold comes from
    a FISA ``Sort1D`` over the candidate distances; the final vote is host
    control flow.
    """

    def __init__(self, k: int = 5, runtime: Optional[HostRuntime] = None):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.runtime = runtime or HostRuntime()
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x, y = np.asarray(x, float), np.asarray(y)
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if self.k > len(x):
            raise ValueError("k exceeds the training-set size")
        self._x, self._y = x, y
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit() first")
        queries = np.asarray(queries, float)
        dist = self.runtime.euclidian(queries, self._x)
        out = np.empty(len(queries), dtype=self._y.dtype)
        for i, row in enumerate(dist):
            # Sort1D gives the k-th smallest distance; votes are host-side.
            threshold = self.runtime.sort(row)[self.k - 1]
            neighbours = self._y[row <= threshold][: self.k]
            values, counts = np.unique(neighbours, return_counts=True)
            out[i] = values[counts.argmax()]
        return out

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())


class KMeans:
    """Lloyd's k-means: distances and centroid sums on FISA, assignment
    and convergence on the host."""

    def __init__(self, k: int = 8, max_iter: int = 50, tol: float = 1e-4,
                 runtime: Optional[HostRuntime] = None, seed: int = 0):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.runtime = runtime or HostRuntime()
        self.centroids: Optional[np.ndarray] = None
        self.iterations_run = 0

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, float)
        if len(x) < self.k:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        centroids = x[rng.choice(len(x), self.k, replace=False)].copy()
        for iteration in range(self.max_iter):
            dist = self.runtime.euclidian(x, centroids)          # FISA
            assign = self.runtime.argmin_rows(dist)              # host
            onehot = self.runtime.one_hot(assign, self.k)        # host
            sums = self.runtime.matmul(onehot, x)                # FISA
            counts = np.maximum(onehot.sum(axis=1, keepdims=True), 1.0)
            new_centroids = sums / counts
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            self.iterations_run = iteration + 1
            if shift < self.tol:
                break
        self.centroids = centroids
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            raise RuntimeError("fit() first")
        return self.runtime.argmin_rows(
            self.runtime.euclidian(np.asarray(x, float), self.centroids))

    def inertia(self, x: np.ndarray) -> float:
        dist = self.runtime.euclidian(np.asarray(x, float), self.centroids)
        return float(dist.min(axis=1).sum())


class LVQClassifier:
    """Learning vector quantization (LVQ1): one prototype set, winner
    pulled toward correctly-classified samples and pushed away otherwise.
    Distance blocks and prototype updates are FISA; the winner selection
    is host control flow."""

    def __init__(self, prototypes_per_class: int = 1, lr: float = 0.1,
                 epochs: int = 10, runtime: Optional[HostRuntime] = None,
                 seed: int = 0):
        self.prototypes_per_class = prototypes_per_class
        self.lr = lr
        self.epochs = epochs
        self.seed = seed
        self.runtime = runtime or HostRuntime()
        self.prototypes: Optional[np.ndarray] = None
        self.proto_labels: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LVQClassifier":
        x, y = np.asarray(x, float), np.asarray(y)
        classes = np.unique(y)
        rng = np.random.default_rng(self.seed)
        protos, labels = [], []
        for c in classes:
            members = np.flatnonzero(y == c)
            picks = rng.choice(members, self.prototypes_per_class,
                               replace=len(members) < self.prototypes_per_class)
            protos.extend(x[picks])
            labels.extend([c] * self.prototypes_per_class)
        prototypes = np.array(protos)
        labels = np.array(labels)

        lr = self.lr
        for _epoch in range(self.epochs):
            dist = self.runtime.euclidian(x, prototypes)          # FISA
            winners = self.runtime.argmin_rows(dist)              # host
            for w in range(len(prototypes)):
                mask = winners == w
                if not mask.any():
                    continue
                chunk = x[mask]
                tile = np.broadcast_to(prototypes[w], chunk.shape)
                diff = self.runtime.sub(chunk, tile)              # FISA
                sign = np.where(y[mask] == labels[w], lr, -lr)
                step = self.runtime.mul(diff, np.repeat(
                    sign[:, None], chunk.shape[1], axis=1))       # FISA
                prototypes[w] = prototypes[w] + step.mean(axis=0)
            lr *= 0.8
        self.prototypes, self.proto_labels = prototypes, labels
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.prototypes is None:
            raise RuntimeError("fit() first")
        dist = self.runtime.euclidian(np.asarray(x, float), self.prototypes)
        return self.proto_labels[self.runtime.argmin_rows(dist)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())


class RBFSVMClassifier:
    """Binary kernel classifier with an RBF kernel (kernel-perceptron
    training -- the paper's SVM benchmark is kernel evaluation + decision
    values, which is exactly what this exercises on FISA)."""

    def __init__(self, gamma: float = 0.5, epochs: int = 20,
                 runtime: Optional[HostRuntime] = None):
        self.gamma = gamma
        self.epochs = epochs
        self.runtime = runtime or HostRuntime()
        self._x: Optional[np.ndarray] = None
        self._alpha_y: Optional[np.ndarray] = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """RBF kernel via FISA: Euclidian1D then Act1D exponential."""
        dist = self.runtime.euclidian(a, b)
        return self.runtime.activation(-self.gamma * dist, func="exp")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RBFSVMClassifier":
        x = np.asarray(x, float)
        y = np.asarray(y, float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be -1/+1")
        kernel = self._kernel(x, x)                               # FISA
        alpha = np.zeros(len(x))
        for _epoch in range(self.epochs):
            decision = self.runtime.matmul(
                kernel, (alpha * y)[:, None])[:, 0]               # FISA
            wrong = np.flatnonzero(np.sign(decision) != y)
            if wrong.size == 0:
                break
            alpha[wrong] += 1.0
        self._x, self._alpha_y = x, alpha * y
        return self

    def decision_function(self, queries: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit() first")
        kernel = self._kernel(np.asarray(queries, float), self._x)
        return self.runtime.matmul(kernel, self._alpha_y[:, None])[:, 0]

    def predict(self, queries: np.ndarray) -> np.ndarray:
        signs = np.sign(self.decision_function(queries))
        return np.where(signs >= 0, 1.0, -1.0)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y, float)).mean())
