"""The host-side FISA runtime.

A :class:`HostRuntime` owns a machine and a tensor store and exposes the
FISA operations as array-in/array-out calls: each call binds the operands,
emits one instruction, runs it through the fractal executor, and returns
the result.  Nothing here knows the machine's shape -- swap a Cambricon-F1
for an F100 and every algorithm built on the runtime runs unchanged (the
paper's single-binary claim, exercised at the application level).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .. import obs, telemetry
from ..core.executor import FractalExecutor
from ..core.isa import Instruction, Opcode
from ..core.machine import Machine, cambricon_f1
from ..core.store import TensorStore
from ..core.tensor import Tensor


class HostRuntime:
    """Array-level frontend over the fractal executor."""

    def __init__(self, machine: Optional[Machine] = None):
        self.machine = machine if machine is not None else cambricon_f1()
        self.store = TensorStore()
        self.executor = FractalExecutor(self.machine, self.store)
        self._ids = itertools.count()
        self.instructions_issued = 0

    # -- plumbing -----------------------------------------------------------

    def _tensor(self, array: np.ndarray, tag: str) -> Tensor:
        array = np.asarray(array, dtype=np.float64)
        t = Tensor(f"host.{tag}{next(self._ids)}", array.shape)
        self.store.bind(t, array)
        return t

    def _run(self, opcode: Opcode, inputs, out_shape, attrs=None) -> np.ndarray:
        regions = tuple(self._tensor(arr, opcode.value.lower()).region()
                        for arr in inputs)
        out = Tensor(f"host.out{next(self._ids)}", tuple(out_shape))
        inst = Instruction(opcode, regions, (out.region(),), attrs or {})
        if obs.get_event_log().enabled:
            obs.log_event("runtime", "host.issue", "debug",
                          opcode=opcode.value, machine=self.machine.name,
                          issued=self.instructions_issued)
        with telemetry.span(f"host:{opcode.value}", cat="host",
                            machine=self.machine.name):
            self.executor.run(inst)
        self.instructions_issued += 1
        return self.store.read(out.region())

    # -- FISA operations ------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``MatMul``: (m, k) @ (k, n)."""
        return self._run(Opcode.MATMUL, [a, b], (a.shape[0], b.shape[1]))

    def euclidian(self, x: np.ndarray, refs: np.ndarray) -> np.ndarray:
        """``Euclidian1D``: pairwise squared distances (n, m)."""
        return self._run(Opcode.EUCLIDIAN1D, [x, refs],
                         (x.shape[0], refs.shape[0]))

    def conv2d(self, x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
        n, h, wd, _ = x.shape
        kh, kw, _, cout = w.shape
        out_shape = (n, (h - kh) // stride + 1, (wd - kw) // stride + 1, cout)
        return self._run(Opcode.CV2D, [x, w], out_shape, {"stride": stride})

    def sort(self, x: np.ndarray) -> np.ndarray:
        """``Sort1D``: ascending merge sort of the flattened input."""
        flat = np.asarray(x).reshape(-1)
        return self._run(Opcode.SORT1D, [flat], (flat.size,))

    def count(self, x: np.ndarray, value: Optional[float] = None) -> int:
        """``Count1D``: matching elements (non-zeros by default)."""
        attrs = {} if value is None else {"value": float(value)}
        return int(self._run(Opcode.COUNT1D, [np.asarray(x).reshape(-1)],
                             (1,), attrs)[0])

    def add(self, a, b) -> np.ndarray:
        return self._run(Opcode.ADD1D, [a, b], np.asarray(a).shape)

    def sub(self, a, b) -> np.ndarray:
        return self._run(Opcode.SUB1D, [a, b], np.asarray(a).shape)

    def mul(self, a, b) -> np.ndarray:
        return self._run(Opcode.MUL1D, [a, b], np.asarray(a).shape)

    def activation(self, x, func: str = "relu") -> np.ndarray:
        return self._run(Opcode.ACT1D, [x], np.asarray(x).shape,
                         {"func": func})

    def hsum(self, x) -> float:
        return float(self._run(Opcode.HSUM1D, [np.asarray(x)], (1,))[0])

    # -- host-side helpers (control flow the paper leaves to the host) -------

    @staticmethod
    def argmin_rows(distances: np.ndarray) -> np.ndarray:
        """Row-wise argmin -- selection is host control flow, not FISA."""
        return distances.argmin(axis=1)

    @staticmethod
    def one_hot(labels: np.ndarray, classes: int) -> np.ndarray:
        out = np.zeros((classes, labels.size))
        out[labels, np.arange(labels.size)] = 1.0
        return out
