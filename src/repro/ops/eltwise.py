"""Element-wise and horizontal-reduction kernels (the Table-3 "Reduction"
opcode group that tends to execute on LFUs)."""

from __future__ import annotations

import numpy as np

_ACTIVATIONS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "exp": np.exp,
    "sqrt": lambda x: np.sqrt(np.maximum(x, 0.0)),
    "neg": lambda x: -x,
    "identity": lambda x: x,
}


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float64) + b.astype(np.float64)


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float64) - b.astype(np.float64)


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float64) * b.astype(np.float64)


def activation(x: np.ndarray, func: str = "relu") -> np.ndarray:
    """Unary element-wise map; ``func`` selects the transfer function."""
    try:
        fn = _ACTIVATIONS[func]
    except KeyError:
        raise ValueError(f"unknown activation {func!r}; one of {sorted(_ACTIVATIONS)}")
    return fn(x.astype(np.float64))


def hsum(x: np.ndarray) -> np.ndarray:
    """Horizontal sum of all elements -> length-1 array."""
    return np.array([x.astype(np.float64).sum()], dtype=np.float64)


def hprod(x: np.ndarray) -> np.ndarray:
    """Horizontal product of all elements -> length-1 array."""
    return np.array([x.astype(np.float64).prod()], dtype=np.float64)


def activation_names():
    return sorted(_ACTIVATIONS)
