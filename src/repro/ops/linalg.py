"""Linear-algebra kernels: MatMul and pairwise Euclidean distance."""

from __future__ import annotations

import numpy as np


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(M, K) @ (K, N) -> (M, N)`` in float64 accumulation."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"matmul shape mismatch: {a.shape} @ {b.shape}")
    return a.astype(np.float64) @ b.astype(np.float64)


def euclidian(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances ``(n, d) x (m, d) -> (n, m)``.

    Squared distance is used (as a hardware LFU would compute it) -- the
    monotone sqrt never changes nearest-neighbour decisions, matching the
    paper's k-NN/k-means usage.
    """
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[1]:
        raise ValueError(f"euclidian shape mismatch: {x.shape} vs {y.shape}")
    xf, yf = x.astype(np.float64), y.astype(np.float64)
    diff = xf[:, None, :] - yf[None, :, :]
    return np.einsum("nmd,nmd->nm", diff, diff)
