"""Reference (numpy) semantics for every FISA operation.

Each module implements one opcode family; :func:`execute` dispatches an
:class:`~repro.core.isa.Opcode` plus concrete numpy operands to the matching
kernel.  These kernels are the ground truth the fractal executor is tested
against: decomposing an instruction and re-assembling the pieces must give
the same numbers as running the kernel directly.
"""

from .dispatch import execute, kernel_for

__all__ = ["execute", "kernel_for"]
