"""Batched (stacked) kernels: one numpy call per fusion group.

Each entry executes ``k`` isomorphic lanes at once on ``(k, ...)``-stacked
operands and must be **bit-identical** per lane to ``k`` separate calls of
the reference kernel in :mod:`repro.ops.dispatch` -- that is the contract
batched plan replay is built on, and ``tests/test_batch.py`` enforces it
per opcode and end-to-end.  The bit-identity arguments, per family:

* ``MatMul``: ``np.matmul`` on ``(k, m, n) @ (k, n, p)`` stacks runs the
  same dgemm per 2-D slice as ``k`` separate ``a @ b`` calls (verified
  empirically on this numpy; the sweep test guards upgrades).
* element-wise (``Add/Sub/Mul/Act1D``, ``LRN``): ufuncs are per-element,
  so a leading batch axis cannot change any value.
* row reductions (``HSum/HProd/Sort/Count1D``): ``reshape(k, -1)`` makes
  each lane a contiguous row and axis-1 reduction applies the same
  pairwise order per row as the 1-D reference.
* pooling (``Max/Min/Avg2D``): lanes collapse into the sample axis, and
  pooling reduces windows per sample independently.

``Cv2D``/``Cv3D`` are **deliberately absent**: collapsing lanes into the
patch-gemm M dimension changes BLAS blocking and the results differ in the
last ulp -- those groups take the counted per-lane fallback
(``ops.batch_fallbacks``).  ``Merge1D`` is absent because the reference is
a sequential pure-Python merge with nothing to vectorize.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.isa import Opcode
from . import conv, eltwise, pool


def _b_matmul(ins, attrs):
    # The reference kernel's astype(float64) hands BLAS *C-contiguous*
    # operands; feeding strided gather views here would take a different
    # dgemm path and drift by an ulp.  ascontiguousarray is a no-op for
    # already-contiguous stacks and one bulk copy (cheaper than the k
    # per-lane astype copies the reference pays) otherwise.
    return np.matmul(np.ascontiguousarray(ins[0]),
                     np.ascontiguousarray(ins[1]))


def _b_euclidian(ins, attrs):
    x, y = ins
    diff = x[:, :, None, :] - y[:, None, :, :]
    return np.einsum("knmd,knmd->knm", diff, diff)


def _b_add(ins, attrs):
    return ins[0].astype(np.float64) + ins[1].astype(np.float64)


def _b_sub(ins, attrs):
    return ins[0].astype(np.float64) - ins[1].astype(np.float64)


def _b_mul(ins, attrs):
    return ins[0].astype(np.float64) * ins[1].astype(np.float64)


def _b_act(ins, attrs):
    return eltwise.activation(ins[0], func=str(attrs.get("func", "relu")))


def _b_hsum(ins, attrs):
    x = ins[0]
    return x.reshape(x.shape[0], -1).astype(np.float64).sum(axis=1)


def _b_hprod(ins, attrs):
    x = ins[0]
    return x.reshape(x.shape[0], -1).astype(np.float64).prod(axis=1)


def _b_sort(ins, attrs):
    x = ins[0]
    return np.sort(x.reshape(x.shape[0], -1), axis=1, kind="stable")


def _b_count(ins, attrs):
    flat = ins[0].reshape(ins[0].shape[0], -1)
    value = attrs.get("value")
    if value is None:
        counts = np.count_nonzero(flat, axis=1)
    else:
        counts = np.count_nonzero(flat == value, axis=1)
    return counts.astype(np.float64)


def _collapse_pool(fn):
    """Fold the lane axis into the pooling sample axis and back."""

    def run(ins, attrs):
        x = ins[0]
        k, n = x.shape[0], x.shape[1]
        flat = x.reshape((k * n,) + x.shape[2:])
        out = fn(flat,
                 kh=int(attrs.get("kh", 2)), kw=int(attrs.get("kw", 2)),
                 sh=int(attrs.get("sh", attrs.get("kh", 2))),
                 sw=int(attrs.get("sw", attrs.get("kw", 2))))
        return out.reshape((k, n) + out.shape[1:])

    return run


def _b_lrn(ins, attrs):
    # lrn only reduces over the channel (last) axis; a leading lane axis
    # passes straight through.
    return conv.lrn(
        ins[0],
        size=int(attrs.get("size", 5)),
        alpha=float(attrs.get("alpha", 1e-4)),
        beta=float(attrs.get("beta", 0.75)),
        k=float(attrs.get("k", 2.0)),
    )


_BATCHED_KERNELS: Dict[Opcode, object] = {
    Opcode.MATMUL: _b_matmul,
    Opcode.EUCLIDIAN1D: _b_euclidian,
    Opcode.ADD1D: _b_add,
    Opcode.SUB1D: _b_sub,
    Opcode.MUL1D: _b_mul,
    Opcode.ACT1D: _b_act,
    Opcode.HSUM1D: _b_hsum,
    Opcode.HPROD1D: _b_hprod,
    Opcode.SORT1D: _b_sort,
    Opcode.COUNT1D: _b_count,
    Opcode.MAX2D: _collapse_pool(pool.max_pool2d),
    Opcode.MIN2D: _collapse_pool(pool.min_pool2d),
    Opcode.AVG2D: _collapse_pool(pool.avg_pool2d),
    Opcode.LRN: _b_lrn,
}


def batched_kernel_for(opcode: Opcode) -> Optional[object]:
    """The stacked kernel for ``opcode``, or ``None`` (per-lane fallback).

    A ``None`` here is a statement about *bit-identity*, not feasibility:
    opcodes are only registered when the stacked form provably reproduces
    the reference kernel bit for bit (see the module docstring).
    """
    return _BATCHED_KERNELS.get(opcode)


def batched_opcodes() -> tuple:
    """Opcodes with a registered stacked kernel (introspection/docs)."""
    return tuple(sorted(_BATCHED_KERNELS, key=lambda op: op.value))
