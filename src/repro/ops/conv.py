"""Convolution kernels (Cv2D, Cv3D) and local response normalization.

Layout conventions (documented in README):

* ``Cv2D``: input ``(N, H, W, Cin)``, weights ``(Kh, Kw, Cin, Cout)``,
  output ``(N, Ho, Wo, Cout)`` with ``Ho = (H - Kh) // sh + 1``.
* ``Cv3D``: input ``(N, D, H, W, Cin)``, weights ``(Kd, Kh, Kw, Cin, Cout)``.

Padding is applied by the *frontend* (the network compiler pads tensors
explicitly), so kernels are "valid"-only; this keeps region decomposition
exact -- a sub-region of a padded input is still a plain region.
"""

from __future__ import annotations

import numpy as np


def conv2d(x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
    """Direct 2-D convolution (cross-correlation), NHWC x HWIO -> NHWC."""
    n, h, wdt, cin = x.shape
    kh, kw, cin2, cout = w.shape
    if cin != cin2:
        raise ValueError(f"channel mismatch: input {cin} vs weight {cin2}")
    ho = (h - kh) // stride + 1
    wo = (wdt - kw) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ValueError("kernel larger than input")
    out = np.zeros((n, ho, wo, cout), dtype=np.float64)
    wmat = w.reshape(kh * kw * cin, cout).astype(np.float64)
    for i in range(ho):
        for j in range(wo):
            patch = x[:, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
            out[:, i, j, :] = patch.reshape(n, -1).astype(np.float64) @ wmat
    return out


def conv3d(x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
    """Direct 3-D convolution, NDHWC x DHWIO -> NDHWC."""
    n, d, h, wdt, cin = x.shape
    kd, kh, kw, cin2, cout = w.shape
    if cin != cin2:
        raise ValueError(f"channel mismatch: input {cin} vs weight {cin2}")
    do = (d - kd) // stride + 1
    ho = (h - kh) // stride + 1
    wo = (wdt - kw) // stride + 1
    if min(do, ho, wo) <= 0:
        raise ValueError("kernel larger than input")
    out = np.zeros((n, do, ho, wo, cout), dtype=np.float64)
    wmat = w.reshape(-1, cout).astype(np.float64)
    for t in range(do):
        for i in range(ho):
            for j in range(wo):
                patch = x[
                    :,
                    t * stride : t * stride + kd,
                    i * stride : i * stride + kh,
                    j * stride : j * stride + kw,
                    :,
                ]
                out[:, t, i, j, :] = patch.reshape(n, -1).astype(np.float64) @ wmat
    return out


def lrn(
    x: np.ndarray, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0
) -> np.ndarray:
    """AlexNet-style local response normalization across channels (NHWC)."""
    xf = x.astype(np.float64)
    sq = xf * xf
    c = x.shape[-1]
    half = size // 2
    denom = np.empty_like(xf)
    for ch in range(c):
        lo, hi = max(0, ch - half), min(c, ch + half + 1)
        denom[..., ch] = sq[..., lo:hi].sum(axis=-1)
    return xf / np.power(k + alpha * denom, beta)
