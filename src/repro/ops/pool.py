"""Pooling kernels (Max2D, Min2D, Avg2D) over NHWC tensors."""

from __future__ import annotations

import numpy as np


def _pool2d(x: np.ndarray, kh: int, kw: int, sh: int, sw: int, reducer) -> np.ndarray:
    n, h, w, c = x.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        raise ValueError("pool window larger than input")
    out = np.empty((n, ho, wo, c), dtype=np.float64)
    xf = x.astype(np.float64)
    for i in range(ho):
        for j in range(wo):
            window = xf[:, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
            out[:, i, j, :] = reducer(window, axis=(1, 2))
    return out


def max_pool2d(x: np.ndarray, kh: int = 2, kw: int = 2, sh: int = 2, sw: int = 2) -> np.ndarray:
    return _pool2d(x, kh, kw, sh, sw, np.max)


def min_pool2d(x: np.ndarray, kh: int = 2, kw: int = 2, sh: int = 2, sw: int = 2) -> np.ndarray:
    return _pool2d(x, kh, kw, sh, sw, np.min)


def avg_pool2d(x: np.ndarray, kh: int = 2, kw: int = 2, sh: int = 2, sw: int = 2) -> np.ndarray:
    return _pool2d(x, kh, kw, sh, sw, np.mean)
