"""Opcode -> kernel dispatch.

:func:`execute` runs a FISA opcode on concrete numpy operands and returns a
tuple of outputs (all kernels here are single-output except none; a tuple
keeps the executor uniform).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .. import obs, telemetry
from ..core.isa import Opcode
from . import conv, eltwise, linalg, pool, sortcount


def _run_cv2d(inputs, attrs):
    return conv.conv2d(inputs[0], inputs[1], stride=int(attrs.get("stride", 1)))


def _run_cv3d(inputs, attrs):
    return conv.conv3d(inputs[0], inputs[1], stride=int(attrs.get("stride", 1)))


def _pool_args(attrs):
    return dict(
        kh=int(attrs.get("kh", 2)),
        kw=int(attrs.get("kw", 2)),
        sh=int(attrs.get("sh", attrs.get("kh", 2))),
        sw=int(attrs.get("sw", attrs.get("kw", 2))),
    )


def _run_max2d(inputs, attrs):
    return pool.max_pool2d(inputs[0], **_pool_args(attrs))


def _run_min2d(inputs, attrs):
    return pool.min_pool2d(inputs[0], **_pool_args(attrs))


def _run_avg2d(inputs, attrs):
    return pool.avg_pool2d(inputs[0], **_pool_args(attrs))


def _run_lrn(inputs, attrs):
    return conv.lrn(
        inputs[0],
        size=int(attrs.get("size", 5)),
        alpha=float(attrs.get("alpha", 1e-4)),
        beta=float(attrs.get("beta", 0.75)),
        k=float(attrs.get("k", 2.0)),
    )


def _run_matmul(inputs, attrs):
    return linalg.matmul(inputs[0], inputs[1])


def _run_euclidian(inputs, attrs):
    return linalg.euclidian(inputs[0], inputs[1])


def _run_sort(inputs, attrs):
    return sortcount.sort1d(inputs[0])


def _run_count(inputs, attrs):
    return sortcount.count1d(inputs[0], value=attrs.get("value"))


def _run_merge(inputs, attrs):
    return sortcount.merge1d(list(inputs))


def _run_act(inputs, attrs):
    return eltwise.activation(inputs[0], func=str(attrs.get("func", "relu")))


_KERNELS = {
    Opcode.CV2D: _run_cv2d,
    Opcode.CV3D: _run_cv3d,
    Opcode.MAX2D: _run_max2d,
    Opcode.MIN2D: _run_min2d,
    Opcode.AVG2D: _run_avg2d,
    Opcode.LRN: _run_lrn,
    Opcode.MATMUL: _run_matmul,
    Opcode.EUCLIDIAN1D: _run_euclidian,
    Opcode.SORT1D: _run_sort,
    Opcode.COUNT1D: _run_count,
    Opcode.MERGE1D: _run_merge,
    Opcode.ADD1D: lambda ins, at: eltwise.add(ins[0], ins[1]),
    Opcode.SUB1D: lambda ins, at: eltwise.sub(ins[0], ins[1]),
    Opcode.MUL1D: lambda ins, at: eltwise.mul(ins[0], ins[1]),
    Opcode.ACT1D: _run_act,
    Opcode.HSUM1D: lambda ins, at: eltwise.hsum(ins[0]),
    Opcode.HPROD1D: lambda ins, at: eltwise.hprod(ins[0]),
}


def kernel_for(opcode: Opcode):
    """The reference kernel callable for ``opcode``."""
    try:
        return _KERNELS[opcode]
    except KeyError:
        # `from None`: the KeyError is an implementation detail of the
        # registry lookup, not context the caller can act on.
        raise NotImplementedError(f"no kernel for {opcode}") from None


def execute(
    opcode: Opcode, inputs: Sequence[np.ndarray], attrs: Dict[str, object]
) -> Tuple[np.ndarray, ...]:
    """Run ``opcode`` on numpy operands; returns a tuple of outputs.

    When telemetry is enabled each dispatch is traced as an ``op:`` span
    (the innermost level of the host -> session -> program -> instruction
    -> op nesting) and counted per opcode; when disabled the overhead is a
    single flag check.
    """
    # Kernels only index/iterate their operands, so the sequence is passed
    # through as-is -- no per-dispatch ``list(inputs)`` re-materialization
    # on either the enabled or the disabled path (Merge1D, the one variadic
    # kernel, makes its own list).
    tracer = telemetry.get_tracer()
    if not tracer.enabled and not telemetry.get_registry().enabled:
        result = kernel_for(opcode)(inputs, attrs or {})
        return result if isinstance(result, tuple) else (result,)
    telemetry.get_registry().count("ops.dispatch",
                                   labels={"opcode": opcode.value})
    log = obs.logger("ops")
    log.debug("dispatch", opcode=opcode.value, operands=len(inputs))
    with tracer.span(f"op:{opcode.value}", cat="op"):
        try:
            result = kernel_for(opcode)(inputs, attrs or {})
        except Exception as err:
            log.error("dispatch.fail", opcode=opcode.value,
                      error=f"{type(err).__name__}: {err}")
            raise
    return result if isinstance(result, tuple) else (result,)
