"""Sort / merge / count kernels.

``Sort1D`` is specified as merge sort in Table 3 precisely because merge
sort is a fractal operation: sub-arrays are sorted independently and the
``Merge1D`` retrieving operator combines them (output-dependent, g = Merge).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def sort1d(x: np.ndarray) -> np.ndarray:
    """Ascending stable sort of a 1-D array."""
    return np.sort(x.reshape(-1), kind="stable")


def merge1d(parts: Sequence[np.ndarray]) -> np.ndarray:
    """k-way merge of already-sorted 1-D arrays."""
    if not parts:
        raise ValueError("merge of zero inputs")
    merged = parts[0].reshape(-1)
    for nxt in parts[1:]:
        nxt = nxt.reshape(-1)
        out = np.empty(merged.size + nxt.size, dtype=np.result_type(merged, nxt))
        i = j = k = 0
        while i < merged.size and j < nxt.size:
            if merged[i] <= nxt[j]:
                out[k] = merged[i]
                i += 1
            else:
                out[k] = nxt[j]
                j += 1
            k += 1
        if i < merged.size:
            out[k:] = merged[i:]
        if j < nxt.size:
            out[k:] = nxt[j:]
        merged = out
    return merged


def count1d(x: np.ndarray, value: Optional[float] = None) -> np.ndarray:
    """Count matching elements; ``value=None`` counts non-zeros.

    Returns a length-1 array so the result is a region like any other FISA
    output (counts from sub-arrays are g-combined with Add).
    """
    flat = x.reshape(-1)
    if value is None:
        n = int(np.count_nonzero(flat))
    else:
        n = int(np.count_nonzero(flat == value))
    return np.array([n], dtype=np.float64)
