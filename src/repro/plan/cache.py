"""Signature-keyed plan caches: in-process memo + on-disk persistence.

Two tiers, both keyed on ``(machine fingerprint, program structural
signature)``:

* an in-process LRU (:class:`PlanCache`) so a serving process pays the
  decomposition walk once per distinct (machine, shape) pair, and
* an optional on-disk store (:class:`DiskPlanCache`, default
  ``~/.cache/repro/plans`` or any ``--plan-cache DIR``) so *processes*
  share the work.  Entries are versioned JSON written atomically;
  corrupted or truncated files are reported with a warning and recompiled,
  never trusted.

The entry point is :func:`compile_cached`; cache traffic is published as
``plan.compile_hits{tier=memory|disk}`` / ``plan.compile_misses`` when
telemetry is enabled (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Sequence, Tuple

from .. import obs, telemetry
from ..analysis.signatures import external_tensors, program_digest
from ..core.isa import Instruction
from ..core.machine import Machine
from .analysis import verify_plan
from .compiler import compile_program, fingerprint_digest, machine_fingerprint
from .plan import FractalPlan, PlanFormatError, plan_from_doc


def default_cache_dir() -> Path:
    """``$REPRO_PLAN_CACHE``, else ``$XDG_CACHE_HOME/repro/plans``, else
    ``~/.cache/repro/plans``."""
    env = os.environ.get("REPRO_PLAN_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plans"


def plan_key(machine: Machine, program: Sequence[Instruction],
             apply_sequential: bool = True) -> Tuple[Tuple, str]:
    """The two-part cache key: (machine fingerprint, program digest)."""
    return (machine_fingerprint(machine, apply_sequential),
            program_digest(program))


class PlanCache:
    """Bounded in-process LRU of compiled plans, safe for threaded use."""

    def __init__(self, capacity: int = 64):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[Tuple, FractalPlan]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[FractalPlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def put(self, key: Tuple, plan: FractalPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskPlanCache:
    """One JSON file per plan under ``directory``; all failures are soft.

    Writes go through a temp file + :func:`os.replace` so a crashed writer
    can never leave a half-written entry under the final name; reads treat
    any unparsable or structurally invalid file as a miss (with a
    :class:`RuntimeWarning` naming the file) so a corrupted cache degrades
    to recompilation instead of wrong results or a crash.
    """

    def __init__(self, directory):
        self.directory = Path(directory)

    def _path(self, machine_fp: Tuple, digest: str) -> Path:
        return self.directory / (
            f"plan-v{_schema_version()}-"
            f"{fingerprint_digest(machine_fp)[:16]}-{digest[:32]}.json")

    def has(self, machine_fp: Tuple, digest: str) -> bool:
        """Whether an entry file exists (it may still be invalid on load)."""
        return self._path(machine_fp, digest).exists()

    def load(self, machine_fp: Tuple, digest: str,
             externals) -> Optional[FractalPlan]:
        path = self._path(machine_fp, digest)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as err:
            warnings.warn(f"ignoring corrupt plan cache entry {path}: {err}",
                          RuntimeWarning, stacklevel=2)
            return None
        try:
            if not isinstance(doc, dict):
                raise PlanFormatError(
                    f"plan document is {type(doc).__name__}, expected object")
            if doc.get("signature_digest") != digest:
                raise PlanFormatError("signature digest mismatch")
            plan = plan_from_doc(doc, externals,
                                 machine_fingerprint=machine_fp)
            # Re-verify the stored analysis products against a fresh
            # analysis of the loaded steps: a tampered safe_zero_copy
            # flag or stale fusion group must never steer the executor.
            try:
                verify_plan(plan)
            except ValueError as err:
                raise PlanFormatError(f"analysis re-verification failed: "
                                      f"{err}") from err
            return plan
        except PlanFormatError as err:
            warnings.warn(f"ignoring invalid plan cache entry {path}: {err}",
                          RuntimeWarning, stacklevel=2)
            return None

    def store(self, machine_fp: Tuple, digest: str, plan: FractalPlan) -> None:
        path = self._path(machine_fp, digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            doc = plan.to_doc()
            fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                       prefix=path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(doc, f, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError) as err:
            # Persisting is an optimization; never fail the run over it.
            warnings.warn(f"could not persist plan to {path}: {err}",
                          RuntimeWarning, stacklevel=2)


def _schema_version() -> int:
    from .plan import PLAN_SCHEMA_VERSION

    return PLAN_SCHEMA_VERSION


_GLOBAL_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide in-memory plan cache."""
    return _GLOBAL_CACHE


def reset_plan_cache() -> None:
    """Drop every in-memory plan (tests / machine-config churn)."""
    _GLOBAL_CACHE.clear()


def _count(name: str, tier: Optional[str] = None) -> None:
    registry = telemetry.get_registry()
    if registry.enabled:
        registry.count(name, labels={"tier": tier} if tier else None)


def compile_cached(
    machine: Machine,
    program: Sequence[Instruction],
    apply_sequential: bool = True,
    disk_dir=None,
    memory_cache: Optional[PlanCache] = None,
) -> FractalPlan:
    """Compile ``program`` for ``machine``, through both cache tiers.

    Lookup order: in-process LRU, then (when ``disk_dir`` is given) the
    on-disk store, then a fresh :func:`repro.plan.compiler.compile_program`
    whose result is inserted into both tiers.  Memory hits whose plan was
    built for *different* tensors (same structure, e.g. a rebuilt workload)
    are transparently rebound -- still far cheaper than re-decomposing.
    """
    program = list(program)
    cache = memory_cache if memory_cache is not None else _GLOBAL_CACHE
    fp = machine_fingerprint(machine, apply_sequential)
    digest = program_digest(program)
    key = (fp, digest)
    log = obs.logger("plan")

    plan = cache.get(key)
    if plan is not None:
        _count("plan.compile_hits", "memory")
        log.debug("cache.hit", tier="memory", steps=plan.n_steps)
        externals = external_tensors(program)
        if plan.external_uids() != tuple(t.uid for t in externals):
            plan = plan.rebind(externals)
            cache.put(key, plan)
        if disk_dir is not None:
            disk = DiskPlanCache(disk_dir)
            if not disk.has(fp, digest):  # memory-only so far: persist it
                disk.store(fp, digest, plan)
        return plan

    if disk_dir is not None:
        disk = DiskPlanCache(disk_dir)
        plan = disk.load(fp, digest, external_tensors(program))
        if plan is not None:
            _count("plan.compile_hits", "disk")
            log.debug("cache.hit", tier="disk", steps=plan.n_steps)
            cache.put(key, plan)
            return plan

    _count("plan.compile_misses")
    log.debug("cache.miss")
    plan = compile_program(machine, program, apply_sequential=apply_sequential)
    cache.put(key, plan)
    if disk_dir is not None:
        DiskPlanCache(disk_dir).store(fp, digest, plan)
    return plan
