"""Compile a FISA program's fractal decomposition once, for replay forever.

:func:`compile_program` walks exactly the recursion that
:class:`repro.core.executor.FractalExecutor` performs -- sequential shrink
(SD) at each non-leaf node, parallel fan-out (PD) across the FFUs, g(.)
reductions on the LFUs -- but instead of *executing* kernels it records
them, producing a :class:`~repro.plan.plan.FractalPlan` whose step order is
the executor's exact execution order.  Because all FFUs of a node run
isomorphic sub-instructions (the paper's structural claim), the expensive
part of functional execution on repeated shapes is precisely this walk;
compiling it once and replaying the flat plan is the functional analogue
of the timing simulator's signature memoization.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from .. import obs
from ..analysis.signatures import external_tensors, program_digest
from ..core.decomposition import decompose_parallel, shrink_sequential
from ..core.isa import Instruction
from ..core.machine import Machine
from ..obs import prof as _prof
from .analysis import annotate_plan
from .batch import lower_plan
from .plan import FractalPlan, PlanStats, PlanStep


def machine_fingerprint(machine: Machine, apply_sequential: bool = True) -> Tuple:
    """Canonical key of everything that shapes functional decomposition.

    Level geometry (fanout + per-level memory capacity) decides every SD
    and PD decision; ``apply_sequential`` selects the executor mode.  Name
    and LFU counts are included conservatively so distinct machine
    configurations never share plans.  Any change here invalidates cached
    plans -- which is the point.
    """
    return (
        machine.name,
        tuple((lv.name, lv.fanout, lv.n_lfus, lv.mem_bytes)
              for lv in machine.levels),
        bool(apply_sequential),
    )


def fingerprint_digest(fingerprint: Tuple) -> str:
    """Stable hex digest of a machine fingerprint (disk-cache keys)."""
    import hashlib

    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()


def compile_program(
    machine: Machine,
    program: Sequence[Instruction],
    apply_sequential: bool = True,
) -> FractalPlan:
    """Flatten the fractal decomposition of ``program`` into a plan.

    The recursion mirrors ``FractalExecutor._run`` exactly; the resulting
    step list replays to bit-identical results (same kernels, same
    operands, same order).  Per-level stats are accumulated as the walk
    proceeds so replays can merge them without re-deriving anything.
    """
    program = list(program)
    t0 = time.perf_counter()
    stats = PlanStats()
    steps: List[PlanStep] = []

    def walk(inst: Instruction, level: int) -> None:
        stats.count(level)
        spec = machine.level(level)
        if spec.is_leaf:
            stats.kernel_calls += 1
            mnemonic = inst.opcode.value
            stats.leaf_ops[mnemonic] = stats.leaf_ops.get(mnemonic, 0) + 1
            stats.bytes_read += sum(r.nbytes for r in inst.inputs)
            stats.bytes_written += sum(r.nbytes for r in inst.outputs)
            steps.append(PlanStep.from_instruction("kernel", inst, level))
            return
        if apply_sequential:
            seq = shrink_sequential(inst, spec.mem_bytes)
            if len(seq) > 1:
                stats.seq_steps += len(seq)
        else:
            seq = [inst]
        for step in seq:
            split = decompose_parallel(step, spec.fanout)
            if split is None:
                walk(step, level + 1)
                continue
            stats.fanouts += 1
            stats.fanout_parts += len(split.parts)
            for part in split.parts:
                walk(part, level + 1)
            for red in split.reduction:
                stats.lfu_calls += 1
                stats.bytes_read += sum(r.nbytes for r in red.inputs)
                stats.bytes_written += sum(r.nbytes for r in red.outputs)
                steps.append(PlanStep.from_instruction("lfu", red, level))

    log = obs.logger("plan")
    log.info("compile.start", machine=machine.name,
             instructions=len(program))
    # Attribute compile-time samples to a synthetic "plan.compile" step so
    # flamegraphs separate decomposition cost from replay cost.
    with _prof.step_scope("plan.compile"):
        for inst in program:
            walk(inst, level=0)
    plan = FractalPlan(
        machine_fingerprint=machine_fingerprint(machine, apply_sequential),
        signature_digest=program_digest(program),
        steps=steps,
        stats=stats,
        externals=external_tensors(program),
    )
    # Analyze-on-compile: every plan that reaches the executor or a cache
    # tier carries zero-copy proofs, fusion groups and the live-byte peak.
    analysis = annotate_plan(plan)
    # Lower-on-compile: the proven fusion groups become BatchedSteps so
    # batched replay (and the schema-v3 document) never re-derives them.
    plan.batched = lower_plan(plan)
    plan.compile_seconds = time.perf_counter() - t0
    log.info("compile.end", steps=len(steps),
             kernel_calls=stats.kernel_calls, lfu_calls=stats.lfu_calls,
             diagnostics=len(analysis.result.diagnostics),
             fusion_groups=len(plan.fusion_groups),
             batched_steps=len(plan.batched),
             seconds=round(plan.compile_seconds, 6))
    return plan
