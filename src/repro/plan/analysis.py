"""Static dataflow analysis over compiled fractal plans.

A :class:`~repro.plan.plan.FractalPlan` records the exact flat sequence of
leaf kernel calls and LFU reductions one (program, machine) pair executes
-- which makes it the right artifact for *legality* analysis: every operand
region is resolved, every accumulate chain is explicit, and the paper's
lockstep-isomorphism claim ("all FFUs at a level execute isomorphic
sub-instructions") is visible as maximal runs of consecutive steps with
identical structural signatures.  This module walks that sequence once and
derives:

* **def-use chains and region liveness** -- which byte-ranges of which
  tensors each step reads and writes, when each tensor becomes live and
  dies, and the exact live-byte peak (:attr:`PlanAnalysis.peak_live_bytes`)
  an arena allocator would need;
* a **region-interference graph** (:class:`InterferenceGraph`) whose edges
  connect steps that touch overlapping bytes with at least one writer --
  the substrate for every legality question below;
* stable **P1xx diagnostics** (registered in
  :mod:`repro.analysis.diagnostics` next to the program-level F0xx codes):
  ``P100`` write-write races inside an unordered isomorphic run, ``P110``
  operands that alias an output of their own step (the runtime aliasing
  guard then forces a copy), ``P120`` dead steps whose outputs nothing
  consumes, and ``P130`` reads of a partially-accumulated region;
* **fusion-legality groups** -- maximal runs of consecutive steps with
  identical opcode/shape/dtype/attrs and *proven-disjoint* regions,
  serialized as ``plan.fusion_groups`` so a batched-execution pass can
  stack them into single numpy calls without re-proving anything;
* **static zero-copy proofs** -- steps whose operands provably never alias
  any of their outputs get ``PlanStep.safe_zero_copy``, letting the
  executor's replay path skip the runtime ``_read_operands`` overlap scan
  (counted as ``store.static_zero_copy``).

Overlap tests are exact on the region lattice but indexed per tensor and
through a shape-keyed spatial hash (:class:`_BoxIndex`), so analysis stays
near-linear on the partitioned access patterns fractal decomposition
emits; a 100k-step plan analyzes in well under its compile time.

Entry points: :func:`analyze_plan` (pure query), :func:`annotate_plan`
(stamps the products onto the plan; called by the compiler so every
compiled plan is analyzed exactly once) and :func:`verify_plan` (recompute
and compare -- the disk-cache load gate).  See ``docs/ANALYSIS.md`` for
the P1xx code table and the plan-lint triage workflow.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.diagnostics import AnalysisResult, Diagnostic, diag
from .plan import FractalPlan, PlanStep

#: version stamp of the analysis products embedded in plan documents;
#: bump whenever a rule change invalidates previously stored verdicts.
ANALYSIS_VERSION = 1

Bounds = Tuple[Tuple[int, int], ...]


def _overlap(a: Bounds, b: Bounds) -> bool:
    """Axis-aligned box overlap on raw bounds (no Region allocation)."""
    for (a_lo, a_hi), (b_lo, b_hi) in zip(a, b):
        if a_lo >= b_hi or b_lo >= a_hi:
            return False
    return True


def _intersect(a: Bounds, b: Bounds) -> Optional[Bounds]:
    out = []
    for (a_lo, a_hi), (b_lo, b_hi) in zip(a, b):
        lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
        if lo >= hi:
            return None
        out.append((lo, hi))
    return tuple(out)


class _BoxIndex:
    """Spatial hash of same-tensor boxes, grouped by box shape.

    Fractal decomposition emits *partitions*: many same-shape boxes tiling
    a tensor.  Hashing each box by ``floor(origin / shape)`` puts
    overlapping same-shape boxes in neighbouring cells, so a membership
    query touches O(3^ndim) cells instead of every stored box; queries
    against a different stored shape scan the (few) cells the query box
    spans.  This is what keeps run-disjointness proofs linear on the
    100k-step plans the F100 machine produces.
    """

    __slots__ = ("_by_shape",)

    def __init__(self) -> None:
        #: shape -> {cell: [bounds, ...]}
        self._by_shape: Dict[Tuple[int, ...],
                             Dict[Tuple[int, ...], List[Bounds]]] = {}

    @staticmethod
    def _cell(bounds: Bounds, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(lo // max(1, s) for (lo, _), s in zip(bounds, shape))

    def add(self, bounds: Bounds) -> None:
        shape = tuple(max(1, hi - lo) for lo, hi in bounds)
        cells = self._by_shape.setdefault(shape, {})
        cells.setdefault(self._cell(bounds, shape), []).append(bounds)

    def query(self, bounds: Bounds) -> Optional[Bounds]:
        """Any stored box overlapping ``bounds``, or ``None``."""
        for shape, cells in self._by_shape.items():
            # Cells a box of `shape` must sit in to overlap `bounds`.
            ranges = [range((lo - s + 1) // s, (hi - 1) // s + 1)
                      for (lo, hi), s in zip(bounds, shape)]
            get = cells.get
            for cell in product(*ranges):
                for cand in get(cell, ()):
                    if _overlap(cand, bounds):
                        return cand
        return None


@dataclass(frozen=True)
class InterferenceEdge:
    """Two steps touching overlapping bytes, at least one writing.

    ``kind`` is ``"ww"`` (both write), ``"raw"`` (``a`` writes, ``b``
    reads) or ``"war"`` (``a`` reads, ``b`` writes); ``a < b`` in step
    order always.
    """

    a: int
    b: int
    kind: str
    tensor: str
    overlap: Bounds


class InterferenceGraph:
    """Region-interference graph of a plan: per-step, per-tensor accesses.

    Nodes are step indices; edges (enumerated lazily by :meth:`iter_edges`
    -- dense producer/consumer patterns make the full edge set quadratic)
    connect steps whose accessed byte-ranges overlap with at least one
    writer.  The per-tensor access tables double as the def-use index the
    diagnostics passes query.
    """

    def __init__(self, plan: FractalPlan):
        self.n_steps = plan.n_steps
        #: tensor uid -> [(step, bounds)] in step order
        self.writes: Dict[int, List[Tuple[int, Bounds]]] = {}
        self.reads: Dict[int, List[Tuple[int, Bounds]]] = {}
        #: accumulate writes only (subset of ``writes``)
        self.acc_writes: Dict[int, List[Tuple[int, Bounds]]] = {}
        self._names: Dict[int, str] = {}
        for index, step in enumerate(plan.steps):
            inst = step.inst
            for r in inst.inputs:
                uid = r.tensor.uid
                self._names[uid] = r.tensor.name
                self.reads.setdefault(uid, []).append((index, r.bounds))
            for r in inst.outputs:
                uid = r.tensor.uid
                self._names[uid] = r.tensor.name
                self.writes.setdefault(uid, []).append((index, r.bounds))
                if step.accumulate:
                    self.acc_writes.setdefault(uid, []).append(
                        (index, r.bounds))

    def tensor_name(self, uid: int) -> str:
        return self._names.get(uid, f"uid{uid}")

    def iter_edges(self, limit: Optional[int] = None
                   ) -> Iterator[InterferenceEdge]:
        """Enumerate interference edges (optionally capped at ``limit``).

        Write-write pairs come first per tensor, then read/write pairs;
        within a tensor, pairs are in (earlier, later) step order.
        """
        emitted = 0
        for uid, wlist in self.writes.items():
            name = self.tensor_name(uid)
            for a_pos in range(len(wlist)):
                i, wi = wlist[a_pos]
                for j, wj in wlist[a_pos + 1:]:
                    inter = _intersect(wi, wj)
                    if inter is None or i == j:
                        continue
                    yield InterferenceEdge(i, j, "ww", name, inter)
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
            for ridx, r in self.reads.get(uid, ()):
                for widx, w in wlist:
                    if widx == ridx:
                        continue
                    inter = _intersect(r, w)
                    if inter is None:
                        continue
                    kind = "raw" if widx < ridx else "war"
                    a, b = min(widx, ridx), max(widx, ridx)
                    yield InterferenceEdge(a, b, kind, name, inter)
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return


@dataclass
class PlanAnalysis:
    """Everything the dataflow analyzer derives from one plan."""

    result: AnalysisResult
    #: maximal fusion-legal runs as ``(start, stop)`` step-index ranges
    #: (half-open, each covering >= 2 steps).
    fusion_groups: List[Tuple[int, int]] = field(default_factory=list)
    #: per-step proof that no operand aliases any output of the same step.
    safe_zero_copy: List[bool] = field(default_factory=list)
    #: exact live-byte high-water mark over the replay order.
    peak_live_bytes: int = 0
    graph: Optional[InterferenceGraph] = None

    @property
    def n_safe_zero_copy(self) -> int:
        return sum(self.safe_zero_copy)

    @property
    def fused_steps(self) -> int:
        return sum(stop - start for start, stop in self.fusion_groups)

    def digest(self) -> str:
        """Stable hash of the derived products (the disk-cache re-verify
        token): any divergence between stored and recomputed products --
        tampered flags, a stale analyzer verdict after a rule change --
        changes this digest."""
        payload = {
            "version": ANALYSIS_VERSION,
            "diags": sorted((d.code, d.index) for d in self.result.diagnostics),
            "groups": [list(g) for g in self.fusion_groups],
            "safe": "".join("1" if s else "0" for s in self.safe_zero_copy),
            "peak": self.peak_live_bytes,
        }
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_doc(self) -> dict:
        """The ``analysis`` section of a serialized plan document."""
        return {
            "version": ANALYSIS_VERSION,
            "diagnostics": [d.to_doc() for d in self.result.diagnostics],
            "n_errors": len(self.result.errors),
            "n_warnings": len(self.result.warnings),
            "safe_zero_copy_steps": self.n_safe_zero_copy,
            "fusion_groups": len(self.fusion_groups),
            "fused_steps": self.fused_steps,
            "peak_live_bytes": self.peak_live_bytes,
            "digest": self.digest(),
        }


def _run_key(step: PlanStep) -> Tuple:
    """Two steps with equal keys are *isomorphic*: same kind and level,
    identical opcode/operand shapes/dtypes/attrs.  Consecutive equal-key
    steps form the lockstep runs the paper's FFUs execute in parallel."""
    return (step.kind, step.level, step.inst.signature())


def _isomorphic_runs(steps: Sequence[PlanStep]) -> Iterator[Tuple[int, int]]:
    """Maximal ``[start, stop)`` runs of consecutive isomorphic steps."""
    start = 0
    while start < len(steps):
        key = _run_key(steps[start])
        stop = start + 1
        while stop < len(steps) and _run_key(steps[stop]) == key:
            stop += 1
        yield start, stop
        start = stop


def _self_alias(step: PlanStep):
    """The first (input region, output region) pair that aliases, or None."""
    inst = step.inst
    for r in inst.inputs:
        for o in inst.outputs:
            if r.tensor.uid == o.tensor.uid and _overlap(r.bounds, o.bounds):
                return r, o
    return None


def _check_races(steps: Sequence[PlanStep],
                 runs: Sequence[Tuple[int, int]]) -> List[Diagnostic]:
    """P100: overlapping plain writes inside one isomorphic run.

    Steps of a run are unordered (sibling FFUs execute them in lockstep),
    so two of them writing the same bytes race.  Accumulate runs are
    exempt: overlapping ``+=`` is the output-dependent decomposition class
    and commutes up to float association.
    """
    diags: List[Diagnostic] = []
    for start, stop in runs:
        if stop - start < 2 or steps[start].accumulate:
            continue
        indexes: Dict[int, _BoxIndex] = {}
        for index in range(start, stop):
            inst = steps[index].inst
            reported = False
            for o in inst.outputs:
                box = indexes.setdefault(o.tensor.uid, _BoxIndex())
                if not reported and box.query(o.bounds) is not None:
                    diags.append(diag(
                        "P100",
                        f"step {index} writes {o!r}, overlapping bytes "
                        f"another step of the same isomorphic run "
                        f"[{start}:{stop}) already writes: sibling FFUs "
                        f"race on the shared region",
                        index, inst))
                    reported = True  # one report per step is enough
                # index every output regardless, so later steps clashing
                # only with this step's remaining outputs are still caught
                box.add(o.bounds)
    return diags


def _check_dead_steps(plan: FractalPlan,
                      graph: InterferenceGraph) -> List[Diagnostic]:
    """P120: steps whose outputs nothing ever consumes.

    A write is consumed when a later step reads overlapping bytes --
    including a later *accumulate* onto them (read-modify-write) -- or
    when it lands in an external tensor (visible to the caller after the
    run).  Everything else is wasted work the compiler should not have
    emitted.
    """
    external = set(plan.external_uids())
    # consumption index: reads plus accumulate outputs, sorted by step.
    consumes: Dict[int, List[Tuple[int, Bounds]]] = {
        uid: list(entries) for uid, entries in graph.reads.items()}
    for uid, entries in graph.acc_writes.items():
        consumes.setdefault(uid, []).extend(entries)
    for entries in consumes.values():
        entries.sort(key=lambda e: e[0])
    consume_idx = {uid: [e[0] for e in entries]
                   for uid, entries in consumes.items()}

    diags: List[Diagnostic] = []
    for index, step in enumerate(plan.steps):
        live = False
        for o in step.inst.outputs:
            uid = o.tensor.uid
            if uid in external:
                live = True
                break
            entries = consumes.get(uid, ())
            pos = bisect_right(consume_idx.get(uid, ()), index)
            # Accumulates consume their own prior value, so a consumer at
            # the same index does not count; strictly-later only.
            if any(_overlap(o.bounds, bounds)
                   for _, bounds in entries[pos:]):
                live = True
                break
        if not live:
            outs = ", ".join(repr(o) for o in step.inst.outputs)
            diags.append(diag(
                "P120",
                f"step {index} writes {outs} but no later step reads any "
                f"of those bytes and no output is externally visible: "
                f"the step is dead weight in the plan",
                index, step.inst))
    return diags


def _check_accumulate_order(plan: FractalPlan,
                            graph: InterferenceGraph) -> List[Diagnostic]:
    """P130: a read landing inside an open accumulation chain.

    For an accumulate write at step ``l`` onto bytes ``B``, the chain over
    ``B`` opens at the most recent *plain* write to ``B`` before ``l``
    (the chain's init; absent for an uninitialized chain).  Any other step
    reading ``B`` strictly between init and ``l`` observes a partial sum
    -- its value changes under any reordering or batching of the chain,
    which is exactly the hazard a fusion pass must not inherit.
    """
    diags: List[Diagnostic] = []
    reported: set = set()
    for uid, acc_list in graph.acc_writes.items():
        rlist = graph.reads.get(uid, ())
        if not rlist:
            continue
        acc_set = set(acc_list)
        plain = [(i, b) for i, b in graph.writes.get(uid, ())
                 if (i, b) not in acc_set]
        acc_idx = [i for i, _ in acc_list]
        for ridx, rbounds in rlist:
            if ridx in reported:
                continue
            pos = bisect_right(acc_idx, ridx)
            for l_idx, l_bounds in acc_list[pos:]:
                inter = _intersect(rbounds, l_bounds)
                if inter is None:
                    continue
                init = max((p for p, b in plain
                            if p < l_idx and _overlap(b, inter)), default=-1)
                if init < ridx:
                    diags.append(diag(
                        "P130",
                        f"step {ridx} reads "
                        f"{graph.tensor_name(uid)}{_fmt(inter)} while the "
                        f"accumulation finishing at step {l_idx} is still "
                        f"open (chain init at step {init}): the read "
                        f"observes a partial sum",
                        ridx, plan.steps[ridx].inst))
                    reported.add(ridx)
                    break
    diags.sort(key=lambda d: d.index)
    return diags


def _fmt(bounds: Bounds) -> str:
    return "[" + ",".join(f"{lo}:{hi}" for lo, hi in bounds) + "]"


def _fusion_groups(steps: Sequence[PlanStep],
                   runs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Maximal batched-execution-legal runs (>= 2 steps each).

    A batched pass reads *all* group inputs, executes, then writes *all*
    group outputs -- legal iff within the group (a) outputs are pairwise
    disjoint (write-back order must not matter), (b) no step's input
    overlaps any step's output (no producer->consumer or aliasing inside
    the batch), intra-step included.  Checked incrementally while scanning
    each isomorphic run, so an illegal step closes the group and may start
    the next one.
    """
    groups: List[Tuple[int, int]] = []
    for run_start, run_stop in runs:
        if run_stop - run_start < 2:
            continue
        start = run_start
        while start < run_stop:
            out_idx: Dict[int, _BoxIndex] = {}
            in_idx: Dict[int, _BoxIndex] = {}
            stop = start
            while stop < run_stop:
                if not _extends_group(steps[stop], out_idx, in_idx):
                    break
                stop += 1
            if stop - start >= 2:
                groups.append((start, stop))
                start = stop
            else:
                start = max(stop, start + 1)
    return groups


def _extends_group(step: PlanStep, out_idx: Dict[int, _BoxIndex],
                   in_idx: Dict[int, _BoxIndex]) -> bool:
    """Check ``step`` against the group's region indexes; add it if legal."""
    inst = step.inst
    if _self_alias(step) is not None:
        return False
    for o in inst.outputs:
        uid = o.tensor.uid
        box = out_idx.get(uid)
        if box is not None and box.query(o.bounds) is not None:
            return False  # overlapping outputs: write-back order matters
        box = in_idx.get(uid)
        if box is not None and box.query(o.bounds) is not None:
            return False  # output stomps bytes a sibling reads
    for r in inst.inputs:
        box = out_idx.get(r.tensor.uid)
        if box is not None and box.query(r.bounds) is not None:
            return False  # reads bytes a sibling writes (producer in batch)
    for o in inst.outputs:
        out_idx.setdefault(o.tensor.uid, _BoxIndex()).add(o.bounds)
    for r in inst.inputs:
        in_idx.setdefault(r.tensor.uid, _BoxIndex()).add(r.bounds)
    return True


def _peak_live_bytes(plan: FractalPlan) -> int:
    """Exact live-byte high-water mark over the replay order.

    Externals are bound before step 0 and stay resident for the caller, so
    they are live over the whole plan; compile-created partials are live
    from their first access through their last.  (The current TensorStore
    never frees -- this number is what a reclaiming arena would peak at,
    which is the ROADMAP-2 sizing input.)
    """
    n = plan.n_steps
    if n == 0:
        return sum(t.nbytes for t in plan.externals)
    external = set(plan.external_uids())
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    sizes: Dict[int, int] = {t.uid: t.nbytes for t in plan.externals}
    for index, step in enumerate(plan.steps):
        for r in step.inst.inputs + step.inst.outputs:
            uid = r.tensor.uid
            sizes.setdefault(uid, r.tensor.nbytes)
            first.setdefault(uid, index)
            last[uid] = index
    delta = [0] * (n + 1)
    for uid, size in sizes.items():
        if uid in external:
            lo, hi = 0, n - 1
        else:
            lo, hi = first.get(uid, 0), last.get(uid, 0)
        delta[lo] += size
        delta[hi + 1] -= size
    peak = live = 0
    for step_delta in delta[:n]:
        live += step_delta
        if live > peak:
            peak = live
    return peak


def analyze_plan(plan: FractalPlan, graph: Optional[InterferenceGraph] = None,
                 ) -> PlanAnalysis:
    """Run the full dataflow analysis over ``plan`` (pure; no mutation).

    Returns the diagnostics plus the three derived products (fusion
    groups, zero-copy proofs, live-byte peak).  Pass a prebuilt ``graph``
    to reuse the access index across analyses.
    """
    steps = plan.steps
    if graph is None:
        graph = InterferenceGraph(plan)
    runs = list(_isomorphic_runs(steps))

    result = AnalysisResult(
        program_name=f"plan:{plan.signature_digest[:16]}",
        instructions=len(steps))
    safe: List[bool] = []
    for index, step in enumerate(steps):
        alias = _self_alias(step)
        safe.append(alias is None)
        if alias is not None:
            r, o = alias
            result.diagnostics.append(diag(
                "P110",
                f"step {index} reads {r.tensor.name}{_fmt(r.bounds)} "
                f"overlapping its own output {_fmt(o.bounds)}: the replay "
                f"aliasing guard must copy the operand every run",
                index, step.inst))
    result.extend(_check_races(steps, runs))
    result.extend(_check_dead_steps(plan, graph))
    result.extend(_check_accumulate_order(plan, graph))
    result.diagnostics.sort(
        key=lambda d: (d.index if d.index >= 0 else 1 << 30, d.code))

    return PlanAnalysis(
        result=result,
        fusion_groups=_fusion_groups(steps, runs),
        safe_zero_copy=safe,
        peak_live_bytes=_peak_live_bytes(plan),
        graph=graph,
    )


def annotate_plan(plan: FractalPlan,
                  analysis: Optional[PlanAnalysis] = None) -> PlanAnalysis:
    """Analyze ``plan`` and stamp the products onto it (in place).

    Sets ``PlanStep.safe_zero_copy`` on every proven step,
    ``plan.fusion_groups``, ``plan.analysis`` (the serializable summary,
    diagnostics included) and ``plan.stats.peak_live_bytes``.  Called by
    the compiler so every plan that reaches the executor or a cache tier
    carries verified products.
    """
    if analysis is None:
        analysis = analyze_plan(plan)
    for index, is_safe in enumerate(analysis.safe_zero_copy):
        step = plan.steps[index]
        if step.safe_zero_copy != is_safe:
            plan.steps[index] = replace(step, safe_zero_copy=is_safe)
    plan.fusion_groups = list(analysis.fusion_groups)
    plan.analysis = analysis.to_doc()
    plan.stats.peak_live_bytes = analysis.peak_live_bytes
    # The lowering and replay schedule derive from the products stamped
    # above; re-annotation invalidates them (rebuilt lazily on next use).
    plan.batched = []
    plan._schedule = None
    return analysis


def verify_plan(plan: FractalPlan) -> PlanAnalysis:
    """Re-analyze ``plan`` and check it against its stored products.

    The disk-cache load gate: a plan document whose ``analysis`` digest
    does not match a fresh analysis of its own steps -- tampered flags,
    hand-edited fusion groups, or verdicts from an older analyzer version
    -- raises :class:`ValueError` so the caller treats the entry as
    corrupt and recompiles.  Returns the fresh analysis on success.
    """
    analysis = analyze_plan(plan)
    stored = plan.analysis or {}
    stored_digest = stored.get("digest")
    if stored.get("version") != ANALYSIS_VERSION:
        raise ValueError(
            f"plan analysis version {stored.get('version')!r} != "
            f"{ANALYSIS_VERSION}")
    if stored_digest != analysis.digest():
        raise ValueError(
            "plan analysis digest mismatch: stored products do not match "
            "a fresh analysis of the plan's steps")
    flags = [bool(s.safe_zero_copy) for s in plan.steps]
    if flags != analysis.safe_zero_copy:
        raise ValueError("plan safe_zero_copy flags do not match analysis")
    if [tuple(g) for g in plan.fusion_groups] != analysis.fusion_groups:
        raise ValueError("plan fusion groups do not match analysis")
    from .batch import batched_table, lower_plan  # deferred: import order

    if batched_table(plan.ensure_lowered()) != batched_table(lower_plan(plan)):
        raise ValueError(
            "plan batched steps do not match a fresh lowering of its "
            "fusion groups")
    return analysis
