"""The replayable fractal plan: a flattened decomposition recursion.

A :class:`FractalPlan` is what the fractal controller hierarchy *would*
issue for one program on one machine, flattened into the exact ordered
sequence of leaf kernel calls and LFU reductions that the recursive
executor performs -- with all regions resolved and all decomposition
decisions (SD shrink chains, PD fan-outs, g(.) reduction schedules) baked
in at compile time.  Replaying a plan therefore produces *bit-identical*
results to recursive execution (same kernels, same operands, same order),
while skipping every ``shrink_sequential`` / ``decompose_parallel`` call.

Plans are pure data: they can be rebound onto a structurally identical
program with different tensors (:meth:`FractalPlan.rebind`) and round-
tripped through a versioned JSON document (:meth:`FractalPlan.to_doc` /
:func:`plan_from_doc`) for the on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.isa import Instruction, Opcode
from ..core.tensor import DType, Region, Tensor

#: version stamp of the serialized plan document; bump on any layout change
#: (old entries then simply miss and are recompiled).  v3 added the
#: ``batched`` BatchedStep table (verified against a fresh lowering on
#: load), so v2 disk-cache entries miss and recompile.
PLAN_SCHEMA = "repro.plan"
PLAN_SCHEMA_VERSION = 3

#: instruction attributes that steer the executor's write-back, not the
#: kernel itself; precomputed out of every step's ``run_attrs``.
_WRITEBACK_ATTRS = ("accumulate", "acc_local_out", "acc_chain")


class PlanFormatError(ValueError):
    """A serialized plan document is corrupt, truncated or incompatible."""


@dataclass(frozen=True)
class PlanStep:
    """One flattened execution step: a leaf kernel call or an LFU reduction.

    ``run_attrs`` is ``inst.attrs`` with the executor-internal write-back
    flags stripped (precomputed so replay does no per-step dict work), and
    ``accumulate`` is the write-back mode.  ``safe_zero_copy`` is a static
    proof stamped by :mod:`repro.plan.analysis`: no operand of this step
    aliases any of its outputs, so replay may hand the kernel read-only
    views without the runtime ``_read_operands`` overlap scan.
    """

    kind: str  # "kernel" | "lfu"
    inst: Instruction
    level: int
    run_attrs: Dict[str, object]
    accumulate: bool
    safe_zero_copy: bool = False

    @staticmethod
    def from_instruction(kind: str, inst: Instruction, level: int) -> "PlanStep":
        return PlanStep(
            kind=kind,
            inst=inst,
            level=level,
            run_attrs={k: v for k, v in inst.attrs.items()
                       if k not in _WRITEBACK_ATTRS},
            accumulate=bool(inst.attrs.get("accumulate", False)),
        )


@dataclass
class PlanStats:
    """Execution statistics precomputed at compile time.

    These are exactly the counters the recursive executor would have
    accumulated while running the same program, so a replay can merge them
    into :class:`repro.core.executor.ExecutionStats` in one shot instead of
    re-deriving them step by step.
    """

    kernel_calls: int = 0
    lfu_calls: int = 0
    instructions_per_level: Dict[int, int] = field(default_factory=dict)
    max_depth_reached: int = 0
    fanouts: int = 0
    fanout_parts: int = 0
    seq_steps: int = 0
    leaf_ops: Dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    #: exact live-byte high-water mark over the replay order (externals
    #: resident throughout, partials live first-touch..last-touch);
    #: computed by :func:`repro.plan.analysis.analyze_plan`.
    peak_live_bytes: int = 0

    def count(self, level: int) -> None:
        self.instructions_per_level[level] = (
            self.instructions_per_level.get(level, 0) + 1)
        if level > self.max_depth_reached:
            self.max_depth_reached = level

    def to_doc(self) -> dict:
        return {
            "kernel_calls": self.kernel_calls,
            "lfu_calls": self.lfu_calls,
            "instructions_per_level": {
                str(k): v for k, v in self.instructions_per_level.items()},
            "max_depth_reached": self.max_depth_reached,
            "fanouts": self.fanouts,
            "fanout_parts": self.fanout_parts,
            "seq_steps": self.seq_steps,
            "leaf_ops": dict(self.leaf_ops),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "peak_live_bytes": self.peak_live_bytes,
        }

    @staticmethod
    def from_doc(doc: dict) -> "PlanStats":
        return PlanStats(
            kernel_calls=int(doc["kernel_calls"]),
            lfu_calls=int(doc["lfu_calls"]),
            instructions_per_level={
                int(k): int(v)
                for k, v in doc["instructions_per_level"].items()},
            max_depth_reached=int(doc["max_depth_reached"]),
            fanouts=int(doc["fanouts"]),
            fanout_parts=int(doc["fanout_parts"]),
            seq_steps=int(doc["seq_steps"]),
            leaf_ops={str(k): int(v) for k, v in doc["leaf_ops"].items()},
            bytes_read=int(doc["bytes_read"]),
            bytes_written=int(doc["bytes_written"]),
            peak_live_bytes=int(doc.get("peak_live_bytes", 0)),
        )


@dataclass
class FractalPlan:
    """A compiled, replayable execution plan for one (program, machine).

    ``externals`` are the program's operand tensors in first-appearance
    order (the canonical numbering of
    :func:`repro.analysis.program_signature`); every other tensor
    referenced by ``steps`` is a compile-created partial.
    """

    machine_fingerprint: Tuple
    signature_digest: str
    steps: List[PlanStep]
    stats: PlanStats
    externals: List[Tensor]
    compile_seconds: float = 0.0
    #: maximal batched-execution-legal runs of consecutive isomorphic
    #: steps, as half-open ``(start, stop)`` step-index ranges; stamped by
    #: :func:`repro.plan.analysis.annotate_plan` for the ROADMAP-2
    #: BatchedStep pass.
    fusion_groups: List[Tuple[int, int]] = field(default_factory=list)
    #: serialized :meth:`repro.plan.analysis.PlanAnalysis.to_doc` summary
    #: (diagnostics + product counts + re-verification digest); ``None``
    #: only for plans that bypassed the compiler's annotate stage.
    analysis: Optional[dict] = None
    #: fusion groups lowered for stacked execution
    #: (:class:`repro.plan.batch.BatchedStep`); stamped by the compiler,
    #: re-derived lazily by :meth:`ensure_lowered` for plans annotated by
    #: hand, and schema-v3-serialized with verify-on-load.
    batched: List = field(default_factory=list)
    #: lazily built :class:`repro.plan.batch.ReplaySchedule` (kernel
    #: callables, gather/scatter addressing, arena layout); per-plan
    #: derived state, never serialized or compared.
    _schedule: Optional[object] = field(default=None, repr=False,
                                        compare=False)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def external_uids(self) -> Tuple[int, ...]:
        return tuple(t.uid for t in self.externals)

    def ensure_lowered(self) -> List:
        """``self.batched``, lowering the fusion groups on first use."""
        if not self.batched and self.fusion_groups:
            from .batch import lower_plan  # deferred: batch imports plan

            self.batched = lower_plan(self)
        return self.batched

    def replay_schedule(self):
        """The batched replay schedule (built once, cached on the plan)."""
        if self._schedule is None:
            from .batch import build_schedule  # deferred: cycle guard

            self.ensure_lowered()
            self._schedule = build_schedule(self)
        return self._schedule

    # -- rebinding -----------------------------------------------------------

    def rebind(self, externals: Sequence[Tensor]) -> "FractalPlan":
        """This plan re-expressed over a new set of external tensors.

        ``externals`` must correspond position by position to this plan's
        ``externals`` (equal shapes and dtypes) -- which is guaranteed when
        both programs share a :func:`repro.analysis.program_signature`.
        Partial tensors are re-allocated fresh so two rebound plans never
        collide in a shared :class:`~repro.core.store.TensorStore`.
        """
        if len(externals) != len(self.externals):
            raise PlanFormatError(
                f"rebind: expected {len(self.externals)} external tensors, "
                f"got {len(externals)}")
        mapping: Dict[int, Tensor] = {}
        for old, new in zip(self.externals, externals):
            if old.shape != new.shape or old.dtype != new.dtype:
                raise PlanFormatError(
                    f"rebind: tensor mismatch {old.name}{old.shape} vs "
                    f"{new.name}{new.shape}")
            mapping[old.uid] = new

        def map_tensor(t: Tensor) -> Tensor:
            got = mapping.get(t.uid)
            if got is None:
                got = Tensor(name=t.name, shape=t.shape, dtype=t.dtype,
                             space=t.space)
                mapping[t.uid] = got
            return got

        def map_region(r: Region) -> Region:
            return Region(map_tensor(r.tensor), r.bounds)

        steps = []
        for step in self.steps:
            inst = step.inst
            new_inst = Instruction(
                inst.opcode,
                tuple(map_region(r) for r in inst.inputs),
                tuple(map_region(r) for r in inst.outputs),
                dict(inst.attrs),
            )
            # Analysis products are region-structural, so the zero-copy
            # proof survives rebinding verbatim.
            steps.append(replace(
                PlanStep.from_instruction(step.kind, new_inst, step.level),
                safe_zero_copy=step.safe_zero_copy))
        return FractalPlan(
            machine_fingerprint=self.machine_fingerprint,
            signature_digest=self.signature_digest,
            steps=steps,
            stats=self.stats,
            externals=list(externals),
            compile_seconds=self.compile_seconds,
            fusion_groups=list(self.fusion_groups),
            analysis=self.analysis,
        )

    # -- serialization -------------------------------------------------------

    def to_doc(self) -> dict:
        """Versioned, JSON-serializable plan document (disk-cache payload)."""
        tensor_ids: Dict[int, int] = {}
        tensors: List[dict] = []
        external_index = {t.uid: i for i, t in enumerate(self.externals)}

        def tid(t: Tensor) -> int:
            got = tensor_ids.get(t.uid)
            if got is None:
                got = len(tensors)
                tensor_ids[t.uid] = got
                tensors.append({
                    "name": t.name,
                    "shape": list(t.shape),
                    "dtype": t.dtype.name,
                    "space": t.space,
                    "external": external_index.get(t.uid, -1),
                })
            return got

        # Register externals first so ids are stable and every external is
        # present even if (degenerately) unreferenced by any step.
        for t in self.externals:
            tid(t)
        steps = []
        for step in self.steps:
            inst = step.inst
            steps.append({
                "kind": step.kind,
                "level": step.level,
                "opcode": inst.opcode.value,
                "attrs": dict(inst.attrs),
                "inputs": [[tid(r.tensor), [list(b) for b in r.bounds]]
                           for r in inst.inputs],
                "outputs": [[tid(r.tensor), [list(b) for b in r.bounds]]
                            for r in inst.outputs],
                "safe": step.safe_zero_copy,
            })
        return {
            "schema": PLAN_SCHEMA,
            "version": PLAN_SCHEMA_VERSION,
            "machine_fingerprint": repr(self.machine_fingerprint),
            "signature_digest": self.signature_digest,
            "n_externals": len(self.externals),
            "tensors": tensors,
            "steps": steps,
            "stats": self.stats.to_doc(),
            "compile_seconds": self.compile_seconds,
            "fusion_groups": [list(g) for g in self.fusion_groups],
            "analysis": self.analysis,
            "batched": [b.to_doc() for b in self.ensure_lowered()],
        }


_OPCODES = {op.value: op for op in Opcode}


def plan_from_doc(doc: dict, externals: Sequence[Tensor],
                  machine_fingerprint: Optional[Tuple] = None) -> FractalPlan:
    """Rebuild a plan from its document, bound onto ``externals``.

    Raises :class:`PlanFormatError` on any structural problem -- wrong
    schema/version, truncated tables, unknown opcodes, shape mismatches --
    so a corrupt cache entry is reported and skipped, never executed.
    """
    try:
        if doc.get("schema") != PLAN_SCHEMA:
            raise PlanFormatError(f"not a plan document: {doc.get('schema')!r}")
        if doc.get("version") != PLAN_SCHEMA_VERSION:
            raise PlanFormatError(
                f"plan version {doc.get('version')!r} != "
                f"{PLAN_SCHEMA_VERSION}")
        if int(doc["n_externals"]) != len(externals):
            raise PlanFormatError(
                f"plan binds {doc['n_externals']} externals, "
                f"program has {len(externals)}")

        tensors: List[Tensor] = []
        for entry in doc["tensors"]:
            ext = int(entry["external"])
            shape = tuple(int(d) for d in entry["shape"])
            dtype = DType.from_name(str(entry["dtype"]))
            if ext >= 0:
                t = externals[ext]
                if t.shape != shape or t.dtype != dtype:
                    raise PlanFormatError(
                        f"external {ext} mismatch: plan has "
                        f"{shape}/{entry['dtype']}, program has "
                        f"{t.shape}/{t.dtype.name}")
            else:
                t = Tensor(name=str(entry["name"]), shape=shape, dtype=dtype,
                           space=str(entry["space"]))
            tensors.append(t)

        def region(spec) -> Region:
            tid, bounds = spec
            return Region(tensors[int(tid)],
                          tuple((int(lo), int(hi)) for lo, hi in bounds))

        steps: List[PlanStep] = []
        for raw in doc["steps"]:
            kind = str(raw["kind"])
            if kind not in ("kernel", "lfu"):
                raise PlanFormatError(f"unknown step kind {kind!r}")
            opcode = _OPCODES.get(str(raw["opcode"]))
            if opcode is None:
                raise PlanFormatError(f"unknown opcode {raw['opcode']!r}")
            inst = Instruction(
                opcode,
                tuple(region(s) for s in raw["inputs"]),
                tuple(region(s) for s in raw["outputs"]),
                dict(raw["attrs"]),
            )
            steps.append(replace(
                PlanStep.from_instruction(kind, inst, int(raw["level"])),
                safe_zero_copy=bool(raw.get("safe", False))))
        fusion_groups = [(int(a), int(b))
                         for a, b in doc.get("fusion_groups", [])]
        analysis = doc.get("analysis")
        if analysis is not None and not isinstance(analysis, dict):
            raise PlanFormatError("plan analysis section must be a mapping")
        plan = FractalPlan(
            machine_fingerprint=(machine_fingerprint
                                 if machine_fingerprint is not None
                                 else (doc["machine_fingerprint"],)),
            signature_digest=str(doc["signature_digest"]),
            steps=steps,
            stats=PlanStats.from_doc(doc["stats"]),
            externals=list(externals),
            compile_seconds=float(doc.get("compile_seconds", 0.0)),
            fusion_groups=fusion_groups,
            analysis=analysis,
        )
        # The stored BatchedStep table must match a fresh lowering of the
        # rebuilt plan exactly -- a tampered or stale table must never
        # steer the batched executor, so on mismatch the document is
        # rejected (the cache then recompiles).  The fresh lowering is
        # what the plan carries; the stored table is only a check.
        from .batch import (batched_table, lower_plan,
                            normalize_batched_docs)

        plan.batched = lower_plan(plan)
        stored = doc.get("batched")
        if stored is None:
            if plan.fusion_groups:
                raise PlanFormatError(
                    "plan document is missing its batched-step table")
        else:
            if not isinstance(stored, list):
                raise PlanFormatError(
                    "plan batched section must be a list")
            if normalize_batched_docs(stored) != batched_table(plan.batched):
                raise PlanFormatError(
                    "batched-step table does not match a fresh lowering "
                    "of the plan's fusion groups")
        return plan
    except PlanFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as err:
        raise PlanFormatError(f"malformed plan document: "
                              f"{type(err).__name__}: {err}") from err
