"""Plan-level vectorization: BatchedStep lowering, replay schedule, arena.

The dataflow analyzer (:mod:`repro.plan.analysis`) proves which runs of
consecutive isomorphic steps are *fusion-legal* -- pairwise-disjoint
outputs, no input/output interference inside the run -- and stamps them on
every compiled plan as ``plan.fusion_groups``.  This module turns those
proofs into execution structure, the paper's lockstep-FFU claim made
concrete:

* :func:`lower_plan` lowers each legal group of ``k`` lanes into a
  :class:`BatchedStep` (one opcode, stacked ``(k, ...)`` operand tables,
  shared run_attrs), serialized into the schema-v3 plan document and
  re-derived/compared on every cache load so a tampered table can never
  steer the executor;
* :func:`build_schedule` compiles the step list into a
  :class:`ReplaySchedule`: an interleaving of :class:`BatchedItem` groups
  and :class:`SingleItem` steps with every per-replay decision -- kernel
  callables, operand slice tuples, aliasing copy-masks, gather/scatter
  addressing -- resolved once per plan instead of once per run;
* gathers and scatters use **offset arithmetic**: when a group's lanes
  tile one tensor at a constant element stride (the shape fractal
  decomposition emits), the stacked ``(k, ...)`` operand is an
  ``as_strided`` view of the backing array (zero bytes moved; a stride of
  0 expresses a broadcast operand shared by every lane), with a counted
  per-lane copy loop as the general fallback;
* :func:`build_arena_layout` first-fit allocates every plan-owned
  intermediate into one flat buffer using the same live-interval sweep
  that produced ``PlanStats.peak_live_bytes``, at schedule-item
  granularity so a slot is never recycled while a lane of the current
  group still reads it.  Reused slots are re-zeroed at the owning
  tensor's first touch, reproducing ``TensorStore.ensure`` zero-fill
  semantics exactly.

Replaying the schedule is bit-identical to unbatched replay by
construction (verified per-opcode by the batched-kernel registry tests and
end-to-end by the suite sweep in ``tests/test_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..core.isa import Instruction, Opcode
from ..core.tensor import Region, Tensor
from .plan import FractalPlan, PlanStep

__all__ = [
    "ArenaLayout",
    "BatchedItem",
    "BatchedStep",
    "ReplaySchedule",
    "SingleItem",
    "batched_table",
    "build_arena_layout",
    "build_schedule",
    "lower_plan",
    "normalize_batched_docs",
]


# -- BatchedStep: the serialized lowering product ---------------------------

@dataclass(frozen=True)
class BatchedStep:
    """One fusion group lowered for stacked execution.

    ``lanes`` are the group's plan steps (``plan.steps[start:stop]``,
    kept by reference); all lanes share ``kind``/``opcode``/``level``/
    ``run_attrs``/``accumulate`` by the analyzer's isomorphism key.
    """

    start: int
    stop: int
    kind: str
    opcode: Opcode
    level: int
    run_attrs: Dict[str, object]
    accumulate: bool
    lanes: Tuple[PlanStep, ...]

    @property
    def n_lanes(self) -> int:
        return self.stop - self.start

    def to_doc(self) -> dict:
        return {
            "start": self.start,
            "stop": self.stop,
            "kind": self.kind,
            "opcode": self.opcode.value,
            "level": self.level,
            "lanes": self.n_lanes,
        }


def lower_plan(plan: FractalPlan) -> List[BatchedStep]:
    """Lower every batchable fusion group of ``plan`` into BatchedSteps.

    Deterministic in the plan's analysis products: same steps + same
    ``fusion_groups`` always produce the same table (which is what lets
    the cache-load path re-derive and compare it).  Groups whose steps
    are not single-output are left unlowered -- they replay as singles.
    """
    batched: List[BatchedStep] = []
    for start, stop in plan.fusion_groups:
        lanes = tuple(plan.steps[start:stop])
        lead = lanes[0]
        if any(len(s.inst.outputs) != 1 for s in lanes):
            continue
        if any(s.kind != lead.kind or s.level != lead.level
               or s.inst.opcode is not lead.inst.opcode
               or len(s.inst.inputs) != len(lead.inst.inputs)
               or s.accumulate != lead.accumulate for s in lanes):
            # Defensive: the analyzer's isomorphism key guarantees this;
            # a plan violating it is corrupt, not batchable.
            continue
        batched.append(BatchedStep(
            start=start, stop=stop, kind=lead.kind,
            opcode=lead.inst.opcode, level=lead.level,
            run_attrs=lead.run_attrs, accumulate=lead.accumulate,
            lanes=lanes))
    return batched


def batched_table(batched: Sequence[BatchedStep]) -> List[Tuple]:
    """Comparable identity of a lowering (cache verification token)."""
    return [(b.start, b.stop, b.kind, b.opcode.value, b.level, b.n_lanes)
            for b in batched]


def normalize_batched_docs(raw) -> List[Tuple]:
    """A stored ``batched`` document section, as a comparable table."""
    table = []
    for entry in raw:
        table.append((int(entry["start"]), int(entry["stop"]),
                      str(entry["kind"]), str(entry["opcode"]),
                      int(entry["level"]), int(entry["lanes"])))
    return table


# -- gather / scatter addressing -------------------------------------------

_ITEMSIZE = 8  # the store backs every tensor with float64


def _elem_strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Row-major element strides of a tensor shape."""
    strides = [1] * len(shape)
    acc = 1
    for d in range(len(shape) - 1, -1, -1):
        strides[d] = acc
        acc *= shape[d]
    return tuple(strides)


def _slices(region: Region) -> Tuple[slice, ...]:
    return tuple(slice(lo, hi) for lo, hi in region.bounds)


class _StridedAccess:
    """All lanes address one tensor at a constant element stride.

    The stacked ``(k, ...)`` operand is pure offset arithmetic: an
    ``as_strided`` view at ``origin + i * delta`` elements per lane
    (``delta == 0`` is a broadcast operand shared by every lane).  Falls
    back to the loop path if the backing array is ever non-contiguous.
    """

    __slots__ = ("tensor", "origin", "delta", "shape", "byte_strides",
                 "lane_slices", "k")
    #: gathers are views (the executor tallies them as zero-copy reads).
    zero_copy = True

    def __init__(self, tensor: Tensor, origin: int, delta: int,
                 shape: Tuple[int, ...], byte_strides: Tuple[int, ...],
                 lane_slices: List[Tuple[Tensor, Tuple[slice, ...]]],
                 k: int) -> None:
        self.tensor = tensor
        self.origin = origin
        self.delta = delta
        self.shape = shape
        self.byte_strides = byte_strides
        self.lane_slices = lane_slices
        self.k = k

    def _view(self, base: np.ndarray) -> np.ndarray:
        flat = base.reshape(-1)
        anchor = flat[self.origin:] if self.origin else flat
        return as_strided(anchor, shape=(self.k,) + self.shape,
                          strides=(self.delta * _ITEMSIZE,) + self.byte_strides)

    def gather(self, store) -> np.ndarray:
        base = store.ensure(self.tensor)
        if not base.flags.c_contiguous:
            return _loop_gather(store, self.lane_slices, self.shape)
        view = self._view(base)
        view.flags.writeable = False
        return view

    def scatter(self, store, stacked: np.ndarray, accumulate: bool) -> None:
        base = store.ensure(self.tensor)
        if not base.flags.c_contiguous:
            _loop_scatter(store, self.lane_slices, stacked, accumulate)
            return
        view = self._view(base)
        if accumulate:
            view += stacked
        else:
            view[:] = stacked


class _LoopAccess:
    """General case: per-lane slice addressing (lanes may even live on
    different tensors).  Gather materializes the stack; scatter writes
    lane by lane."""

    __slots__ = ("lane_slices", "shape", "k")
    #: gathers materialize a stacked copy (tallied as copied reads).
    zero_copy = False

    def __init__(self, lane_slices: List[Tuple[Tensor, Tuple[slice, ...]]],
                 shape: Tuple[int, ...]) -> None:
        self.lane_slices = lane_slices
        self.shape = shape
        self.k = len(lane_slices)

    def gather(self, store) -> np.ndarray:
        return _loop_gather(store, self.lane_slices, self.shape)

    def scatter(self, store, stacked: np.ndarray, accumulate: bool) -> None:
        _loop_scatter(store, self.lane_slices, stacked, accumulate)


def _loop_gather(store, lane_slices, shape) -> np.ndarray:
    out = np.empty((len(lane_slices),) + shape, dtype=np.float64)
    ensure = store.ensure
    for i, (tensor, sl) in enumerate(lane_slices):
        out[i] = ensure(tensor)[sl]
    out.flags.writeable = False
    return out


def _loop_scatter(store, lane_slices, stacked, accumulate) -> None:
    ensure = store.ensure
    if accumulate:
        for i, (tensor, sl) in enumerate(lane_slices):
            ensure(tensor)[sl] += stacked[i]
    else:
        for i, (tensor, sl) in enumerate(lane_slices):
            ensure(tensor)[sl] = stacked[i]


def _build_access(regions: Sequence[Region]):
    """The cheapest addressing mode covering one operand position's lanes."""
    lane_slices = [(r.tensor, _slices(r)) for r in regions]
    lead = regions[0]
    shape = lead.shape
    if any(r.tensor.uid != lead.tensor.uid or r.shape != shape
           for r in regions[1:]):
        return _LoopAccess(lane_slices, shape)
    strides = _elem_strides(lead.tensor.shape)
    offs = [sum(lo * st for (lo, _), st in zip(r.bounds, strides))
            for r in regions]
    deltas = {offs[i + 1] - offs[i] for i in range(len(offs) - 1)}
    if len(deltas) != 1:
        return _LoopAccess(lane_slices, shape)
    byte_strides = tuple(st * _ITEMSIZE for st in strides)
    return _StridedAccess(lead.tensor, offs[0], deltas.pop(), shape,
                          byte_strides, lane_slices, len(regions))


# -- schedule items ---------------------------------------------------------

class SingleItem:
    """One unfused plan step with every per-replay decision precomputed:
    the kernel callable, operand/output slice tuples, and (for steps the
    analyzer could not prove alias-free) the operand copy-mask the runtime
    overlap scan would otherwise recompute every run."""

    __slots__ = ("index", "step", "inst", "opcode", "opval", "level",
                 "run_attrs", "accumulate", "kernel", "in_specs",
                 "out_specs", "copy_mask", "n_in")
    batched = False

    def __init__(self, index: int, step: PlanStep, kernel) -> None:
        inst = step.inst
        self.index = index
        self.step = step
        self.inst = inst
        self.opcode = inst.opcode
        self.opval = inst.opcode.value
        self.level = step.level
        self.run_attrs = step.run_attrs
        self.accumulate = step.accumulate
        self.kernel = kernel
        self.in_specs = tuple((r.tensor, _slices(r)) for r in inst.inputs)
        self.out_specs = tuple((r.tensor, _slices(r), r.shape, r.nelems)
                               for r in inst.outputs)
        self.n_in = len(inst.inputs)
        if step.safe_zero_copy:
            self.copy_mask = None
        else:
            outputs = inst.outputs
            self.copy_mask = tuple(
                any(r.overlaps(o) for o in outputs) for r in inst.inputs)

    @property
    def start(self) -> int:
        return self.index

    @property
    def stop(self) -> int:
        return self.index + 1


class BatchedItem:
    """One BatchedStep with resolved addressing and kernels: per-operand
    gather specs, the output scatter spec, the stacked batched kernel (or
    ``None``, selecting the counted per-lane fallback)."""

    __slots__ = ("start", "stop", "k", "opcode", "opval", "level", "kind",
                 "run_attrs", "accumulate", "gathers", "scatter",
                 "out_shape", "out_nelems", "kernel", "batched_kernel",
                 "n_in")
    batched = True

    def __init__(self, bstep: BatchedStep, kernel, batched_kernel) -> None:
        self.start = bstep.start
        self.stop = bstep.stop
        self.k = bstep.n_lanes
        self.opcode = bstep.opcode
        self.opval = bstep.opcode.value
        self.level = bstep.level
        self.kind = bstep.kind
        self.run_attrs = bstep.run_attrs
        self.accumulate = bstep.accumulate
        self.kernel = kernel
        self.batched_kernel = batched_kernel
        insts = [s.inst for s in bstep.lanes]
        self.n_in = len(insts[0].inputs)
        self.gathers = tuple(
            _build_access([inst.inputs[j] for inst in insts])
            for j in range(self.n_in))
        outs = [inst.outputs[0] for inst in insts]
        self.scatter = _build_access(outs)
        self.out_shape = outs[0].shape
        self.out_nelems = outs[0].nelems


# -- the replay schedule ----------------------------------------------------

@dataclass
class ReplaySchedule:
    """Batched replay program for one plan: ordered items + the arena."""

    items: List[object]
    n_steps: int
    arena: "ArenaLayout"
    batched_steps: int
    batched_lanes: int
    #: lanes whose group has no stacked kernel and would run the counted
    #: per-lane fallback (gather copies + a python loop) -- slower than
    #: the singles path they replace.
    fallback_lanes: int

    @property
    def has_batches(self) -> bool:
        return self.batched_steps > 0

    @property
    def fully_batched(self) -> bool:
        """Every lowered lane has a stacked kernel (no fallback lanes).

        The default replay policy engages the vectorized engine only for
        fully-covered schedules: a fallback group pays gather/scatter
        copies without a stacked kernel to amortize them, so partially
        covered plans (conv-heavy models) default to the classic loop.
        ``batch=True`` still forces the schedule, fallbacks and all.
        """
        return self.batched_steps > 0 and self.fallback_lanes == 0


def build_schedule(plan: FractalPlan) -> ReplaySchedule:
    """Compile ``plan.steps`` + ``plan.batched`` into a ReplaySchedule."""
    from ..ops.batch import batched_kernel_for
    from ..ops.dispatch import kernel_for

    items: List[object] = []
    pos = 0
    lanes = 0
    n_batched = 0
    fallback_lanes = 0
    for bstep in sorted(plan.batched, key=lambda b: b.start):
        for index in range(pos, bstep.start):
            step = plan.steps[index]
            items.append(SingleItem(index, step, kernel_for(step.inst.opcode)))
        batched_kernel = batched_kernel_for(bstep.opcode)
        items.append(BatchedItem(bstep, kernel_for(bstep.opcode),
                                 batched_kernel))
        lanes += bstep.n_lanes
        if batched_kernel is None:
            fallback_lanes += bstep.n_lanes
        n_batched += 1
        pos = bstep.stop
    for index in range(pos, plan.n_steps):
        step = plan.steps[index]
        items.append(SingleItem(index, step, kernel_for(step.inst.opcode)))
    arena = build_arena_layout(plan, items)
    return ReplaySchedule(items=items, n_steps=plan.n_steps, arena=arena,
                          batched_steps=n_batched, batched_lanes=lanes,
                          fallback_lanes=fallback_lanes)


# -- arena layout -----------------------------------------------------------

@dataclass
class ArenaLayout:
    """First-fit packing of the plan's intermediates into one flat buffer.

    ``bindings`` maps each plan-owned (non-external) tensor to its element
    offset, in first-touch order; ``zero_items`` lists ``(item_ordinal,
    binding_index)`` pairs whose slot reuses previously-dirtied bytes and
    must be re-zeroed when the tensor's live interval opens (reproducing
    ``TensorStore.ensure`` zero-fill semantics).  Intervals are measured
    in schedule-item ordinals, so a slot is never recycled while any lane
    of the current batched group still reads its old occupant.
    """

    total_elems: int
    bindings: List[Tuple[Tensor, int]]
    zero_items: List[Tuple[int, int]]

    @property
    def nbytes(self) -> int:
        return self.total_elems * _ITEMSIZE


def _item_regions(item, plan: FractalPlan):
    """``(region, is_input)`` pairs an item touches, inputs first."""
    if item.batched:
        steps = plan.steps[item.start:item.stop]
        for step in steps:
            for r in step.inst.inputs:
                yield r, True
        for step in steps:
            for r in step.inst.outputs:
                yield r, False
    else:
        inst = item.inst
        for r in inst.inputs:
            yield r, True
        for r in inst.outputs:
            yield r, False


def _covers(region: Region) -> bool:
    """Does ``region`` span its whole tensor?"""
    return region.bounds == tuple((0, d) for d in region.tensor.shape)


def build_arena_layout(plan: FractalPlan, items: Sequence[object]
                       ) -> ArenaLayout:
    """Pack plan-owned intermediates with a first-fit free list over their
    item-granular live intervals (the ``peak_live_bytes`` sweep, executed
    as an allocator instead of a high-water accounting pass)."""
    external = set(plan.external_uids())
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    tensors: Dict[int, Tensor] = {}
    order: List[int] = []
    #: dead-zero elimination: a tensor whose first touch is a full
    #: non-accumulate overwrite never observes its initial contents, so a
    #: recycled slot needs no re-zero for it.  Any other first touch (a
    #: read, an accumulate, a partial write -- including one lane of a
    #: group writing its slice of a shared tensor) keeps ``ensure``'s
    #: zero-fill semantics conservatively.
    needs_zero: Dict[int, bool] = {}
    for ordinal, item in enumerate(items):
        accumulate = item.accumulate
        for r, is_input in _item_regions(item, plan):
            uid = r.tensor.uid
            if uid in external:
                continue
            if uid not in first:
                first[uid] = ordinal
                order.append(uid)
                tensors[uid] = r.tensor
                needs_zero[uid] = (is_input or accumulate
                                   or not _covers(r))
            last[uid] = ordinal

    allocs_at: Dict[int, List[int]] = {}
    frees_at: Dict[int, List[int]] = {}
    for uid in order:
        allocs_at.setdefault(first[uid], []).append(uid)
        frees_at.setdefault(last[uid], []).append(uid)

    free_blocks: List[Tuple[int, int]] = []  # (offset, size), offset-sorted
    end = 0
    used_max = 0
    offsets: Dict[int, int] = {}
    bindings: List[Tuple[Tensor, int]] = []
    binding_index: Dict[int, int] = {}
    zero_items: List[Tuple[int, int]] = []

    def alloc(n: int) -> int:
        nonlocal end
        for i, (off, size) in enumerate(free_blocks):
            if size >= n:
                if size == n:
                    free_blocks.pop(i)
                else:
                    free_blocks[i] = (off + n, size - n)
                return off
        if free_blocks:
            off, size = free_blocks[-1]
            if off + size == end:  # grow the tail block instead of the heap
                free_blocks.pop()
                end = off + n
                return off
        off = end
        end += n
        return off

    def release(off: int, n: int) -> None:
        lo, hi = off, off + n
        merged: List[Tuple[int, int]] = []
        placed = False
        for b_off, b_size in free_blocks:
            if b_off + b_size == lo:
                lo = b_off
                continue
            if b_off == hi:
                hi = b_off + b_size
                continue
            if not placed and b_off > hi:
                merged.append((lo, hi - lo))
                placed = True
            merged.append((b_off, b_size))
        if not placed:
            merged.append((lo, hi - lo))
        free_blocks[:] = sorted(merged)

    for ordinal in range(len(items)):
        for uid in allocs_at.get(ordinal, ()):
            n = tensors[uid].nelems
            off = alloc(n)
            offsets[uid] = off
            binding_index[uid] = len(bindings)
            bindings.append((tensors[uid], off))
            if off < used_max and needs_zero[uid]:
                # Recycled bytes a first read/accumulate/partial write
                # would observe: re-zero at interval open.
                zero_items.append((ordinal, binding_index[uid]))
            used_max = max(used_max, off + n)
        for uid in frees_at.get(ordinal, ()):
            release(offsets[uid], tensors[uid].nelems)

    return ArenaLayout(total_elems=end, bindings=bindings,
                       zero_items=zero_items)
