"""``repro.plan`` -- compile-once / run-many for the functional executor.

The paper's fractal decomposition is *structural*: on a fixed machine, a
program of fixed shapes always decomposes into the same tree of leaf
kernels and LFU reductions.  This package exploits that by walking the
decomposition recursion **once** (:func:`compile_program`), flattening it
into a replayable :class:`FractalPlan`, and memoizing plans on structural
signatures (:func:`compile_cached`) -- in-process and, optionally, on disk
-- so warm runs of the same shapes skip every ``shrink_sequential`` /
``decompose_parallel`` call.

Typical use::

    session = InferenceSession(workload, machine=cambricon_f1())
    session.initialize_parameters(seed=0)
    session.compile()                  # one decomposition walk
    for batch in traffic:
        out = session(img=batch)       # replayed, bit-identical

or at the executor level::

    plan = executor.compile(program)   # cached by (machine, signature)
    executor.run_program(program, plan=plan)

See docs/PERFORMANCE.md for the lifecycle, cache keys and invalidation
rules, and the recorded warm-replay speedups.
"""

from .analysis import (
    ANALYSIS_VERSION,
    InterferenceEdge,
    InterferenceGraph,
    PlanAnalysis,
    analyze_plan,
    annotate_plan,
    verify_plan,
)
from .batch import (
    ArenaLayout,
    BatchedItem,
    BatchedStep,
    ReplaySchedule,
    SingleItem,
    batched_table,
    build_arena_layout,
    build_schedule,
    lower_plan,
    normalize_batched_docs,
)
from .cache import (
    DiskPlanCache,
    PlanCache,
    compile_cached,
    default_cache_dir,
    get_plan_cache,
    plan_key,
    reset_plan_cache,
)
from .compiler import compile_program, fingerprint_digest, machine_fingerprint
from .plan import (
    PLAN_SCHEMA,
    PLAN_SCHEMA_VERSION,
    FractalPlan,
    PlanFormatError,
    PlanStats,
    PlanStep,
    plan_from_doc,
)

__all__ = [
    "ANALYSIS_VERSION",
    "PLAN_SCHEMA",
    "PLAN_SCHEMA_VERSION",
    "ArenaLayout",
    "BatchedItem",
    "BatchedStep",
    "DiskPlanCache",
    "FractalPlan",
    "InterferenceEdge",
    "InterferenceGraph",
    "PlanAnalysis",
    "PlanCache",
    "PlanFormatError",
    "PlanStats",
    "PlanStep",
    "ReplaySchedule",
    "SingleItem",
    "analyze_plan",
    "annotate_plan",
    "batched_table",
    "build_arena_layout",
    "build_schedule",
    "compile_cached",
    "compile_program",
    "default_cache_dir",
    "fingerprint_digest",
    "get_plan_cache",
    "lower_plan",
    "machine_fingerprint",
    "normalize_batched_docs",
    "plan_from_doc",
    "plan_key",
    "reset_plan_cache",
]
