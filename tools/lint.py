#!/usr/bin/env python
"""Lint session: ruff over the source tree + `repro lint` over shipped programs.

Run as ``python tools/lint.py`` from the repository root.  Two stages:

1. **ruff** (config in ``pyproject.toml``) over ``src/`` and ``tests/``.
   ruff is optional tooling -- offline environments may not have it, so
   its absence is reported as a skip, not a failure.
2. **ruff, strict profile** over the entire ``src/repro`` tree (paths and
   select set in ``[tool.repro.lint]`` of pyproject.toml; the historic
   per-package allowlist is gone -- every package is held to the
   comprehension/simplify/return bar the instrumentation code pioneered).
3. **FISA static analysis smoke**: ``python -m repro lint`` over every
   ``examples/programs/*.fisa`` (must exit 0) and over the negative
   fixtures in ``tests/fixtures/`` (must exit non-zero -- they exist to
   prove the analyzer fires).

Exit code is non-zero if any mandatory stage fails, making this suitable
as a CI job.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run(argv: list[str]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(argv, cwd=ROOT, env=env).returncode


def stage_ruff() -> bool:
    if importlib.util.find_spec("ruff") is None:
        print("[lint] ruff not installed -- skipping style stage "
              "(pip install ruff to enable)")
        return True
    print("[lint] ruff check src tests tools")
    return _run([sys.executable, "-m", "ruff", "check", "src", "tests", "tools"]) == 0


def _telemetry_lint_config() -> tuple:
    """(paths, select) for the strict stage from pyproject.toml."""
    paths = ["src/repro"]
    select = "E,W,F,I,B,C4,SIM,RET"
    try:  # tomllib is py311+; fall back to the defaults above without it
        import tomllib
    except ImportError:
        return paths, select
    try:
        with open(ROOT / "pyproject.toml", "rb") as f:
            cfg = tomllib.load(f)
        section = cfg.get("tool", {}).get("repro", {}).get("lint", {})
        paths = section.get("telemetry-paths", paths)
        select = section.get("telemetry-select", select)
    except OSError:
        pass
    return paths, select


def stage_ruff_telemetry() -> bool:
    """Strict ruff profile over src/repro (skip if ruff is absent)."""
    if importlib.util.find_spec("ruff") is None:
        print("[lint] ruff not installed -- skipping strict stage")
        return True
    paths, select = _telemetry_lint_config()
    existing = [p for p in paths if (ROOT / p).exists()]
    if not existing:
        print("[lint] FAIL: strict lint paths missing: " + ", ".join(paths))
        return False
    print(f"[lint] ruff check --select {select} {' '.join(existing)}")
    return _run([sys.executable, "-m", "ruff", "check",
                 "--select", select, *existing]) == 0


def stage_fisa() -> bool:
    ok = True

    shipped = sorted((ROOT / "examples" / "programs").glob("*.fisa"))
    if not shipped:
        print("[lint] FAIL: no shipped .fisa programs found")
        return False
    print(f"[lint] repro lint over {len(shipped)} shipped program(s)")
    rc = _run([sys.executable, "-m", "repro", "lint", *map(str, shipped)])
    if rc != 0:
        print(f"[lint] FAIL: shipped programs must be analyzer-clean (exit {rc})")
        ok = False

    fixtures = sorted((ROOT / "tests" / "fixtures").glob("*.fisa"))
    for fixture in fixtures:
        # Every negative fixture must be *rejected* -- in strict mode, so
        # warning-only fixtures (e.g. dtype mixes) count as firing too.
        rc = _run([sys.executable, "-m", "repro", "lint", "--strict", str(fixture)])
        if rc == 0:
            print(f"[lint] FAIL: negative fixture {fixture.name} passed strict lint")
            ok = False

    return ok


def main() -> int:
    failed = []
    if not stage_ruff():
        failed.append("ruff")
    if not stage_ruff_telemetry():
        failed.append("ruff-telemetry")
    if not stage_fisa():
        failed.append("fisa")
    if failed:
        print(f"[lint] FAILED stages: {', '.join(failed)}")
        return 1
    print("[lint] all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
