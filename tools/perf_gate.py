#!/usr/bin/env python3
"""Perf-regression gate: fresh paper-suite RunReport vs the committed baseline.

Re-simulates the seven Table-5 benchmarks on Cambricon-F1 (the same code
path as ``pytest benchmarks/``: :func:`conftest._simulate_suite`), writes
the suite RunReport into a temporary directory, and diffs it against
``benchmarks/baselines/BENCH_reference.json`` with
:func:`repro.perf.diff_documents`.  Only deterministic simulator metrics
are gated (simulated seconds, attribution, attained ops); wall-clock span
rollups are informational, so the gate is reproducible across hosts.

Exit codes (shared with ``repro diff``):

* **0** -- no gated metric regressed,
* **2** -- usage/IO error (missing baseline, simulation failure, ...),
* **3** -- at least one gated regression past the threshold.

Schema tolerance: fresh reports are RunReport **v3** (they carry
``events``/``health`` observability sections) while the committed baseline
may still be v2.  :func:`repro.perf.diff.diff_documents` skips those
sections entirely, so the gate never flags them as noise and v2 baselines
keep working until the next ``--update``.

After an intentional performance change, refresh the baseline with
``python tools/perf_gate.py --update`` and commit the new JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

DEFAULT_BASELINE = ROOT / "benchmarks" / "baselines" / "BENCH_reference.json"


def fresh_suite_document(machine_key: str) -> dict:
    """Simulate the paper suite and return the BENCH_<machine>.json dict."""
    # The suite's reports land in a throwaway tmp dir, but its run-history
    # points must outlive the gate so `repro sentinel` accumulates a real
    # time series -- pin $REPRO_HISTORY to benchmarks/reports/ before
    # conftest's import-time setdefault can route it into the tmp dir.
    os.environ.setdefault("REPRO_HISTORY",
                          str(ROOT / "benchmarks" / "reports"))
    import conftest  # benchmarks/conftest.py (sys.path above)

    from repro import cambricon_f1, cambricon_f100

    machine = {"f1": cambricon_f1, "f100": cambricon_f100}[machine_key]()
    prev = os.environ.get("REPRO_BENCH_REPORT_DIR")
    with tempfile.TemporaryDirectory(prefix="perf_gate_") as tmp:
        os.environ["REPRO_BENCH_REPORT_DIR"] = tmp
        try:
            conftest._simulate_suite(machine)
        finally:
            if prev is None:
                os.environ.pop("REPRO_BENCH_REPORT_DIR", None)
            else:
                os.environ["REPRO_BENCH_REPORT_DIR"] = prev
        slug = machine.name.lower().replace(" ", "_").replace("-", "_")
        path = Path(tmp) / f"BENCH_{slug}.json"
        return json.loads(path.read_text(encoding="utf-8"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", choices=("f1", "f100"), default="f1",
                        help="instance to re-simulate (default f1)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline RunReport (default {DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative slip gated metrics may take "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the fresh report "
                             "and exit 0")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable diff")
    parser.add_argument("--min-replay-speedup", type=float, default=1.0,
                        metavar="X",
                        help="floor for the warm-replay speedup recorded in "
                             "notes.plan_microbench (cold recursive s / warm "
                             "replay s); exit 3 below it.  Default 1.0 = "
                             "replay must never be slower; CI may demand 2.0")
    parser.add_argument("--min-batched-speedup", type=float, default=1.0,
                        metavar="X",
                        help="floor for the batched-replay speedup recorded "
                             "in notes.plan_microbench (warm unbatched s / "
                             "warm batched s); exit 3 below it.  Default 1.0 "
                             "= batching must never be slower; CI demands "
                             "2.0 on f100")
    parser.add_argument("--microbench-only", action="store_true",
                        help="skip the suite simulation + diff and gate only "
                             "the plan microbenchmark floors (fast CI mode)")
    args = parser.parse_args(argv)

    if args.microbench_only:
        return _microbench_gate(args)

    from repro.perf import DiffConfig, diff_documents
    from repro.telemetry import validate_document

    try:
        candidate = fresh_suite_document(args.machine)
    except Exception as err:  # noqa: BLE001 - gate must report, not crash
        print(f"perf_gate: suite simulation failed: {err}", file=sys.stderr)
        return 2

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(candidate, f, indent=2)
            f.write("\n")
        print(f"perf_gate: baseline updated -> {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, ValueError) as err:
        print(f"perf_gate: cannot read baseline {args.baseline}: {err}\n"
              f"perf_gate: (bootstrap with: python tools/perf_gate.py --update)",
              file=sys.stderr)
        return 2
    for name, doc in (("baseline", baseline), ("candidate", candidate)):
        problems = validate_document(doc)
        if problems:
            print(f"perf_gate: {name} is not a valid RunReport: "
                  f"{'; '.join(problems)}", file=sys.stderr)
            return 2

    result = diff_documents(
        baseline, candidate,
        config=DiffConfig(rel_threshold=args.threshold),
        baseline_name=str(args.baseline),
        candidate_name=f"fresh {args.machine} suite",
    )
    if args.json:
        print(json.dumps(result.to_json_obj(), indent=2))
    else:
        print(result.format_table())

    # Plan-replay gates: wall-clock on this host (not diffed against the
    # baseline document, which may come from different hardware) -- the
    # candidate's own replay ratios must clear their floors.  Reports
    # predating the plan compiler simply skip them.
    micro = (candidate.get("notes") or {}).get("plan_microbench") or {}
    code = _gate_microbench(micro, args)
    if code:
        return code
    return result.exit_code


def _gate_microbench(micro: dict, args) -> int:
    """Apply both microbench floors; 0 ok / 3 below a floor."""
    speedup = micro.get("speedup")
    if speedup is not None:
        verdict = "ok" if speedup >= args.min_replay_speedup else "REGRESSED"
        print(f"plan replay speedup: {speedup:.2f}x "
              f"(cold {micro.get('cold_recursive_s', 0) * 1e3:.1f} ms -> warm "
              f"{micro.get('warm_replay_s', 0) * 1e3:.1f} ms on "
              f"{micro.get('benchmark', '?')}; floor "
              f"{args.min_replay_speedup:.2f}x) {verdict}")
        if speedup < args.min_replay_speedup:
            return 3
    batched = micro.get("batched_speedup")
    if batched is not None:
        verdict = ("ok" if batched >= args.min_batched_speedup
                   else "REGRESSED")
        print(f"batched replay speedup: {batched:.2f}x "
              f"(warm {micro.get('warm_replay_s', 0) * 1e3:.1f} ms -> "
              f"batched {micro.get('warm_batched_s', 0) * 1e3:.1f} ms on "
              f"{micro.get('benchmark', '?')}, "
              f"{micro.get('batched_steps', 0)} batched step(s); floor "
              f"{args.min_batched_speedup:.2f}x) {verdict}")
        if batched < args.min_batched_speedup:
            return 3
    return 0


def _microbench_gate(args) -> int:
    """``--microbench-only``: run just the plan microbenchmark and gate it.

    Skips the full suite simulation and baseline diff, so CI can enforce
    the replay/batching floors on the expensive machine (f100) in seconds
    instead of minutes.
    """
    import conftest  # benchmarks/conftest.py (sys.path above)

    from repro import cambricon_f1, cambricon_f100

    machine = {"f1": cambricon_f1, "f100": cambricon_f100}[args.machine]()
    try:
        micro = conftest._plan_microbench(machine)
    except Exception as err:  # noqa: BLE001 - gate must report, not crash
        print(f"perf_gate: plan microbenchmark failed: {err}",
              file=sys.stderr)
        return 2
    return _gate_microbench(micro, args)


if __name__ == "__main__":
    raise SystemExit(main())
