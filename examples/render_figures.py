#!/usr/bin/env python
"""Render every paper figure as an SVG file (Fig 1, 10, 13, 15, 16).

Writes into ./figures/ by default; simulation-backed figures (the k-NN
timelines and both rooflines) run the real benchmark programs, so this
takes a couple of minutes.
"""

import sys

from repro.viz import render_all


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    paths = render_all(out_dir)
    for name, path in sorted(paths.items()):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
