#!/usr/bin/env python
"""Systematic ablation sweep: both machine instances x the Section-3.6
feature variants x three benchmarks, exported as a table and CSV.

Shows the whole optimization story in one grid: what the TTT, operand
broadcasting and pipeline concatenation are each worth on each instance.
"""

from repro import cambricon_f1, cambricon_f100
from repro.sim.sweep import FEATURE_VARIANTS, format_table, run_sweep, to_csv
from repro.workloads import knn_workload, resnet152, vgg16


def main():
    machines = {
        "Cambricon-F1": cambricon_f1(),
        "Cambricon-F100": cambricon_f100(),
    }
    workloads = {
        "VGG-16": vgg16(batch=8).program,
        "ResNet-152": resnet152(batch=8).program,
        "K-NN": knn_workload(n_samples=65_536).program,
    }
    variants = {k: FEATURE_VARIANTS[k]
                for k in ("baseline", "no-ttt", "no-broadcast",
                          "no-concat", "no-optimizations")}

    records = run_sweep(machines, workloads, variants,
                        progress=lambda cell: print(f"  simulating {cell}"))
    print()
    print(format_table(records))

    with open("ablation_sweep.csv", "w", encoding="utf-8") as f:
        f.write(to_csv(records))
    print("\nwrote ablation_sweep.csv")

    # the headline: what do all three optimizations buy together?
    base = {(r.machine, r.workload): r.total_time
            for r in records if r.variant == "baseline"}
    none = {(r.machine, r.workload): r.total_time
            for r in records if r.variant == "no-optimizations"}
    print("\ncombined Section-3.6 speedup (no-optimizations / baseline):")
    for key in sorted(base):
        print(f"  {key[0]:15s} {key[1]:11s} {none[key] / base[key]:5.2f}x")


if __name__ == "__main__":
    main()
