#!/usr/bin/env python
"""The paper's driving example (Fig 11): k-NN as a FISA assembly program.

Runs the program three ways:

1. *functionally* at a small scale -- the host (acting as the controller
   beyond the top-level node, exactly the paper's programming model) uses
   the FISA results to classify points, validated against pure numpy;
2. *for time* at the paper's Table-5 scale on Cambricon-F1 and
   Cambricon-F100, printing Fig-13-style execution timelines.
"""

import numpy as np

from repro import FractalExecutor, TensorStore, cambricon_f1, cambricon_f100
from repro.frontend import assemble
from repro.sim import FractalSimulator
from repro.sim.trace import render_ascii
from repro.workloads import knn_workload
from repro.workloads.datasets import clustered_samples


def functional_demo():
    n, dims, cats = 64, 16, 4
    x, labels, centers = clustered_samples(n, dims, cats, spread=0.2)

    source = f"""
    ; Fig-11 style k-NN kernel: distances, then host-side selection
    input refs {cats} {dims}
    input batch {n} {dims}
    tensor dist {n} {cats}
    Euclidian1D dist, batch, refs
    output dist
    """
    w = assemble(source, "knn")
    store = TensorStore()
    for t in w.inputs.values():
        store.bind(t, {"refs": centers, "batch": x}[t.name.split(".")[-1]])
    FractalExecutor(cambricon_f1(), store).run_program(w.program)

    dist = store.read(list(w.outputs.values())[0].region())
    predicted = dist.argmin(axis=1)  # host-side control flow
    accuracy = (predicted == labels).mean()
    print(f"functional k-NN on Cambricon-F1: accuracy {accuracy:.1%} "
          f"(nearest-center on separable clusters; expect ~100%)")
    assert accuracy > 0.95


def timing_demo():
    w = knn_workload()  # 262,144 samples x 512 dims, 128 categories
    for machine, names in (
        (cambricon_f1(), ["Chip", "FMP", "Core"]),
        (cambricon_f100(), ["Server", "Card", "Chip", "FMP", "Core"]),
    ):
        sim = FractalSimulator(machine, collect_profiles=True)
        rep = sim.simulate(w.program)
        print(f"\n{machine.name}: {rep.total_time * 1e3:.3f} ms, "
              f"{rep.attained_ops / 1e12:.2f} Tops attained "
              f"({rep.peak_fraction(machine.peak_ops):.1%} of peak)")
        print(render_ascii(rep, width=96, max_depth=2, level_names=names))


if __name__ == "__main__":
    functional_demo()
    timing_demo()
