#!/usr/bin/env python
"""Training on a fractal machine.

Machine-learning computers train as well as infer; every backward pass is
itself a FISA operation (convolution backward is a convolution over
rearranged operands, dense backward is two MatMuls), so the same fractal
machine executes the whole loop.  This script trains a small CNN to
classify two synthetic texture classes, with every bulk operation --
forward, backward, and the SGD update -- flowing through the fractal
executor.
"""

import numpy as np

from repro import custom_machine
from repro.compiler import SGD, Tape
from repro.runtime import HostRuntime


def make_data(n_per_class=24, size=8, seed=0):
    """Two classes: horizontal-stripe images vs vertical-stripe images."""
    rng = np.random.default_rng(seed)
    rows = np.zeros((size, size, 1))
    rows[::2] = 1.0
    cols = np.zeros((size, size, 1))
    cols[:, ::2] = 1.0
    xs, ys = [], []
    for base, label in ((rows, 0.0), (cols, 1.0)):
        for _ in range(n_per_class):
            xs.append(base + 0.25 * rng.normal(size=base.shape))
            ys.append([label])
    x = np.stack(xs)
    y = np.array(ys)
    idx = rng.permutation(len(x))
    return x[idx], y[idx]


def main():
    machine = custom_machine("trainer", [4], [1 << 22, 1 << 18], [8e9, 8e9])
    runtime = HostRuntime(machine)
    x, y = make_data()
    print(f"training on {machine.name}: {len(x)} images, "
          f"conv(3x3x4) -> relu -> dense")

    rng = np.random.default_rng(1)
    wc = 0.4 * rng.normal(size=(3, 3, 1, 4))
    wd = 0.2 * rng.normal(size=(6 * 6 * 4, 1))
    opt = SGD(lr=0.05)

    for epoch in range(15):
        tape = Tape(runtime)
        conv_w = tape.var(wc)
        dense_w = tape.var(wd)
        h = tape.relu(tape.conv2d(tape.var(x, trainable=False), conv_w))
        flat = tape.var(h.value.reshape(len(x), -1), trainable=False)
        # (host reshape; the matmul that follows is FISA)
        logits = tape.matmul(flat, dense_w)
        loss = tape.mse_loss(logits, y)
        # chain the flatten gradient by hand: d(flat) -> d(h)
        tape.backward(loss)
        flat_grad = tape.grad_of(flat).reshape(h.value.shape)
        tape._accumulate(h, flat_grad)
        for closure in reversed(tape._backward[:2]):  # conv + relu backward
            closure()
        opt.step([conv_w, dense_w])
        wc, wd = conv_w.value, dense_w.value

        pred = (logits.value > 0.5).astype(float)
        acc = float((pred == y).mean())
        print(f"  epoch {epoch:2d}: loss {float(loss.value[0]):.4f}  "
              f"accuracy {acc:.1%}  "
              f"({runtime.instructions_issued} FISA instructions so far)")
        if acc == 1.0 and epoch >= 3:
            break
    assert acc > 0.9, "training failed to converge"
    print("converged: the fractal machine trained a CNN end to end")


if __name__ == "__main__":
    main()
