#!/usr/bin/env python
"""Quickstart: build a Cambricon-F machine, run one program on it --
functionally (numbers) and for time (the performance simulator).

The point of the fractal architecture is that the *same* sequential FISA
program runs unmodified on machines of any scale; this script runs one
matrix multiplication on three machines, checks the numbers agree, and
compares the simulated execution times.
"""

import numpy as np

from repro import (
    FractalExecutor,
    Instruction,
    Opcode,
    Tensor,
    TensorStore,
    cambricon_f1,
    cambricon_f100,
    custom_machine,
)
from repro.sim import FractalSimulator


def main():
    # -- 1. write a FISA program (one instruction here) ---------------------
    m, k, n = 512, 512, 512
    a = Tensor("A", (m, k))
    b = Tensor("B", (k, n))
    c = Tensor("C", (m, n))
    program = [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                           (c.region(),))]

    # -- 2. run it functionally on differently-shaped machines --------------
    rng = np.random.default_rng(0)
    arrays = {a: rng.normal(size=a.shape), b: rng.normal(size=b.shape)}
    reference = arrays[a] @ arrays[b]

    machines = [
        custom_machine("pocket", [4], [1 << 22, 1 << 18], [8e9, 8e9]),
        cambricon_f1(),
        cambricon_f100(),
    ]
    print("functional execution (same binary, three machines):")
    for machine in machines:
        store = TensorStore()
        for t, arr in arrays.items():
            store.bind(t, arr)
        executor = FractalExecutor(machine, store)
        executor.run_program(program)
        err = np.abs(store.read(c.region()) - reference).max()
        print(f"  {machine.name:16s} kernels={executor.stats.kernel_calls:6d} "
              f"max_err={err:.2e}")

    # -- 3. simulate the execution time on the paper's two instances --------
    print("\ntiming simulation:")
    for machine in (cambricon_f1(), cambricon_f100()):
        rep = FractalSimulator(machine, collect_profiles=False).simulate(program)
        print(f"  {machine.name:16s} {rep.total_time * 1e6:9.1f} us  "
              f"{rep.attained_ops / 1e12:6.2f} Tops "
              f"({rep.peak_fraction(machine.peak_ops):.1%} of peak), "
              f"root traffic {rep.root_traffic / 2**20:.1f} MiB")

    print("\n(the program never mentions hierarchy depth, memory sizes or "
          "core counts -- that is the paper's programming-productivity "
          "claim in action)")


if __name__ == "__main__":
    main()
