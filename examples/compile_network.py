#!/usr/bin/env python
"""Framework-to-FISA compilation: build a network in the graph API,
optimize it, lower it to FISA, serialize it to the binary format, and run
the *same binary* on two machines.

This walks the full software stack the paper argues Cambricon-F collapses:
framework graph -> optimizer -> one compiler backend -> one binary ->
every machine scale.
"""

import numpy as np

from repro import FractalExecutor, TensorStore, cambricon_f1, custom_machine
from repro.compiler import Graph, lower, optimize
from repro.frontend import decode_program, disassemble, encode_program


def build_graph() -> Graph:
    g = Graph("demo_cnn")
    x = g.input("img", (2, 24, 24, 3))
    # deliberately unoptimized: explicit pads, a duplicated branch, dead code
    p = g.pad(x, 1)
    h = g.conv2d(p, 8, 3, activation="relu")
    h2 = g.conv2d(g.pad(x, 1), 8, 3, activation="relu")  # duplicate of h
    h = g.add(h, h2)
    g.conv2d(x, 16, 3)  # dead branch
    h = g.maxpool(h, 2)
    h = g.flatten(h)
    g.output(g.dense(h, 10))
    return g


def main():
    g = build_graph()
    print(f"graph: {len(g)} nodes")
    g_opt, stats = optimize(g)
    print(f"optimized: {len(g_opt)} nodes "
          f"(pad-folds {stats['pad_fold']}, CSE {stats['cse']}, "
          f"DCE {stats['dce']})")

    workload = lower(g_opt)
    print(f"lowered: {len(workload.program)} FISA instructions, "
          f"{workload.work / 1e6:.1f} MOps")

    binary = encode_program(workload.program)
    print(f"binary: {len(binary)} bytes")
    print("\ndisassembly (first lines):")
    print("\n".join(disassemble(workload.program).splitlines()[:8]))

    # run the decoded binary on two machine shapes
    _, program = decode_program(binary)
    tensors = {}
    for inst in program:
        for r in inst.inputs + inst.outputs:
            tensors[r.tensor.name] = r.tensor
    rng = np.random.default_rng(0)
    image = rng.normal(size=(2, 24, 24, 3))
    results = []
    for machine in (custom_machine("laptop", [4], [1 << 22, 1 << 18],
                                   [8e9, 8e9]),
                    cambricon_f1()):
        store = TensorStore()
        for name, t in tensors.items():
            short = name.split(".")[-1]
            if short.startswith("img"):
                store.bind(t, image)
            elif short.startswith(("w", "fcw")):
                store.bind(t, 0.1 * np.random.default_rng(
                    sum(t.shape)).normal(size=t.shape))
        FractalExecutor(machine, store).run_program(program)
        out = next(t for n, t in tensors.items() if ".fc" in n)
        results.append(store.read(out.region()))
        print(f"\n{machine.name}: logits[0] = "
              f"{np.round(results[-1][0][:5], 4)} ...")
    err = np.abs(results[0] - results[1]).max()
    print(f"\nmax difference across machines: {err:.2e} "
          f"(same binary, same numbers)")


if __name__ == "__main__":
    main()
