#!/usr/bin/env python
"""Design-space exploration: why Cambricon-F is fractal.

Sweeps hierarchy shapes at iso-capability (the paper's Table 4 plus extra
points), sizing each level's memory with the MBOI rule, and prints
area/power/attained-performance so the flat-vs-layered trade-off is
visible: a flat machine starves its cores of bandwidth unless every core
gets an enormous private memory, and its interconnect explodes; layering
restores locality.
"""

from repro.cost.dse import TABLE4_HIERARCHIES, explore_design_space
from repro.sim import FractalSimulator
from repro.workloads import matmul_workload, vgg16


def performance(machine) -> float:
    """Geometric mean over a compute-heavy and a memory-heavy workload."""
    total = 1.0
    for w in (vgg16(batch=8), matmul_workload(8192)):
        rep = FractalSimulator(machine, collect_profiles=False).simulate(w.program)
        total *= rep.attained_ops
    return total ** 0.5


def main():
    hierarchies = dict(TABLE4_HIERARCHIES)
    hierarchies["1-8-512"] = [8, 64]          # an extra two-level point
    hierarchies["1-2-8-64-512"] = [2, 4, 8, 8]  # an extra five-level point

    print(f"{'hierarchy':16s} {'area mm2':>9s} {'power W':>8s} "
          f"{'perf Tops':>10s} {'Tops/J':>7s}   per-level memory")
    for p in explore_design_space(performance_fn=performance,
                                  hierarchies=hierarchies):
        mems = " ".join(f"{lv.mem_bytes / 2**20:.2f}M"
                        for lv in p.machine.levels)
        print(f"{p.hierarchy:16s} {p.area_mm2:9.1f} {p.power_w:8.2f} "
              f"{p.performance_tops:10.2f} {p.efficiency_tops_per_j:7.3f}   "
              f"[{mems}]")
    print("\n(Table 4's conclusion: fewer levels buy raw performance at an "
          "impractical memory/area/power cost; 1-2-16-512 is the sweet spot)")


if __name__ == "__main__":
    main()
