#!/usr/bin/env python
"""ResNet-152 inference on Cambricon-F: compile the network to FISA, verify
a miniature functionally, then simulate the full network on both instances
with the Section-3.6 optimizations toggled (a mini ablation study).
"""

import numpy as np

from repro import FractalExecutor, TensorStore, cambricon_f1, cambricon_f100
from repro.core.executor import run_reference
from repro.sim import FractalSimulator
from repro.workloads import resnet152


def verify_miniature():
    """A 4-block ResNet at 32x32 must execute fractally to the exact
    numbers of the reference kernels."""
    rng = np.random.default_rng(0)
    w = resnet152(batch=1, input_size=32, num_classes=10, blocks=[1, 1, 1, 1])
    frac, ref = TensorStore(), TensorStore()
    for t in list(w.inputs.values()) + list(w.params.values()):
        arr = 0.05 * rng.normal(size=t.shape)
        frac.bind(t, arr)
        ref.bind(t, arr)
    for inst in w.program:
        run_reference(inst, ref)
    FractalExecutor(cambricon_f1(), frac).run_program(w.program)
    out = list(w.outputs.values())[0]
    err = np.abs(frac.read(out.region()) - ref.read(out.region())).max()
    print(f"miniature ResNet functional check: max error {err:.2e}")
    assert err < 1e-6


def simulate_full():
    w = resnet152(batch=32)
    print(f"\nResNet-152, batch 32: {len(w.program)} FISA instructions, "
          f"{w.work / 1e9:.0f} GOps, {w.param_count / 1e6:.1f} M parameters")
    for machine in (cambricon_f1(), cambricon_f100()):
        rep = FractalSimulator(machine, collect_profiles=False).simulate(w.program)
        print(f"\n{machine.name}: {rep.total_time * 1e3:.2f} ms  "
              f"({rep.attained_ops / 1e12:.1f} Tops, "
              f"{rep.peak_fraction(machine.peak_ops):.1%} of peak)")
        print(f"  root traffic {rep.root_traffic / 2**30:.2f} GiB, "
              f"operational intensity {rep.operational_intensity:.0f} ops/B")
        print(f"  TTT: {rep.stats.ttt_hits} hits, "
              f"{rep.stats.elided_bytes / 2**30:.2f} GiB loads elided, "
              f"{rep.stats.forwarded_store_bytes / 2**30:.2f} GiB stores forwarded")
        print(f"  {rep.stats.preassign_fraction:.1%} of instructions "
              f"pre-assignable (pipeline concatenation)")


def mini_ablation():
    w = resnet152(batch=8)
    base = cambricon_f100()
    print("\nablation on Cambricon-F100 (batch 8):")
    baseline = FractalSimulator(base, collect_profiles=False).simulate(w.program)
    print(f"  all optimizations : {baseline.total_time * 1e3:8.2f} ms")
    for label, flags in (
        ("no TTT", {"use_ttt": False}),
        ("no broadcasting", {"use_broadcast": False}),
        ("no concatenation", {"use_concatenation": False}),
    ):
        rep = FractalSimulator(base.with_features(**flags),
                               collect_profiles=False).simulate(w.program)
        print(f"  {label:18s}: {rep.total_time * 1e3:8.2f} ms "
              f"({rep.total_time / baseline.total_time - 1:+.1%})")


if __name__ == "__main__":
    verify_miniature()
    simulate_full()
    mini_ablation()
